package cluster

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"flashcoop/internal/core"
	"flashcoop/internal/ssd"
	"flashcoop/internal/stream"
)

// messagesEqual compares two messages field by field, with Info floats
// compared bitwise: the wire format preserves NaN payloads exactly, but
// NaN != NaN under reflect.DeepEqual. Pressure is the one float compared
// by VALUE (plus a both-NaN case): the trailing extension is omitted
// when Pressure == 0, and -0.0 == 0, so a decoded -0.0 legitimately
// re-encodes to +0.0 — a bitwise comparison would flag that as drift.
func messagesEqual(a, b *Message) bool {
	bits := func(i Info) [4]uint64 {
		return [4]uint64{
			math.Float64bits(i.WriteFrac), math.Float64bits(i.Mem),
			math.Float64bits(i.CPU), math.Float64bits(i.Net),
		}
	}
	pressureEq := a.Pressure == b.Pressure ||
		(math.IsNaN(a.Pressure) && math.IsNaN(b.Pressure))
	return a.Type == b.Type && a.Seq == b.Seq && a.Err == b.Err &&
		reflect.DeepEqual(a.LPNs, b.LPNs) &&
		reflect.DeepEqual(a.Stamps, b.Stamps) &&
		bytes.Equal(a.Data, b.Data) &&
		reflect.DeepEqual(a.Streams, b.Streams) &&
		pressureEq &&
		bits(a.Info) == bits(b.Info) &&
		a.Epoch == b.Epoch && a.Origin == b.Origin &&
		reflect.DeepEqual(a.Members, b.Members)
}

// fuzzSeedMessages are valid frames covering every field combination, so
// the fuzzers start from the interesting part of the input space.
func fuzzSeedMessages() []*Message {
	return []*Message{
		{Type: MsgHello, Seq: 1},
		{Type: MsgHeartbeatAck, Seq: 1<<63 + 7},
		{Type: MsgWriteFwd, Seq: 42, LPNs: []int64{1, 2, 3}, Stamps: []uint64{9, 10, 11}, Data: []byte("abcdef")},
		{Type: MsgDiscard, Seq: 5, LPNs: []int64{-1, 0, 1 << 40}, Stamps: []uint64{0, ^uint64(0), 1}},
		{Type: MsgRCTData, Seq: 9, LPNs: []int64{7}, Stamps: []uint64{3}, Data: bytes.Repeat([]byte{0xAB}, 512)},
		{Type: MsgWorkloadInfo, Seq: 2, Info: Info{WriteFrac: 0.75, Mem: 0.5, CPU: 0.1, Net: 0.9}},
		{Type: MsgError, Seq: 3, Err: "something broke"},
		{Type: MsgResync, Seq: 11, LPNs: []int64{4, 5}, Stamps: []uint64{8, 2}, Data: bytes.Repeat([]byte{0xCD}, 1024)},
		// Trailing-extension frames: stream-tagged discards (one per tag,
		// one mixed) and GC-pressure heartbeats, so the fuzzers mutate the
		// optional tail as well as the fixed body.
		{Type: MsgDiscard, Seq: 13, LPNs: []int64{8, 9, 10, 11}, Stamps: []uint64{1, 2, 3, 4},
			Streams: []stream.Stream{stream.Hot, stream.Warm, stream.Cold, stream.Seq}},
		{Type: MsgDiscard, Seq: 14, LPNs: []int64{12}, Stamps: []uint64{5},
			Streams: []stream.Stream{stream.Seq}, Pressure: 0.25},
		{Type: MsgHeartbeat, Seq: 15, Pressure: 1},
		{Type: MsgHeartbeatAck, Seq: 16, Pressure: math.SmallestNonzeroFloat64},
		// Ring-mode frames: data-plane traffic stamped with the sender's
		// identity and ownership epoch, and the membership control frames,
		// so the fuzzers mutate the second trailing extension too.
		{Type: MsgWriteFwd, Seq: 17, LPNs: []int64{20}, Stamps: []uint64{4}, Data: []byte("zz"),
			Origin: "10.0.0.1:7000", Epoch: 3},
		{Type: MsgDiscard, Seq: 18, LPNs: []int64{21}, Stamps: []uint64{5},
			Origin: "10.0.0.2:7001", Epoch: ^uint64(0)},
		{Type: MsgHeartbeat, Seq: 19, Pressure: 0.5, Origin: "10.0.0.3:7002"},
		{Type: MsgMembership, Seq: 20, Epoch: 7, Origin: "10.0.0.2:7001",
			Members: []string{"10.0.0.1:7000", "10.0.0.2:7001", "10.0.0.3:7002"}},
		{Type: MsgMembershipAck, Seq: 21, Epoch: 7},
	}
}

// FuzzDecodeMessage checks that Unmarshal never panics on arbitrary bytes
// and that any message it does accept survives a marshal/unmarshal round
// trip unchanged — the decoder and encoder must agree on the format.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v", err)
		}
		var m2 Message
		if err := m2.Unmarshal(b); err != nil {
			t.Fatalf("re-marshaled message failed to decode: %v", err)
		}
		if !messagesEqual(&m, &m2) {
			t.Fatalf("round trip changed the message:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// FuzzDecodeResync decodes arbitrary bytes as a MsgResync frame and feeds
// the result to a live node's request handler: the stamp-guarded RCT
// insert must reject malformed shapes (payload/stamp count mismatches,
// hostile LPNs) with MsgError, never panic, and any accepted frame must
// survive a marshal round trip. This is the path a partner's rejoin
// stream arrives on, so a malicious or corrupted peer must not be able to
// crash the backup side.
func FuzzDecodeResync(f *testing.F) {
	// A bare node, not NewLiveNode: the resync handler only needs the RCT
	// side, and skipping the listener + background goroutines keeps each
	// fuzz worker process self-contained.
	dev, err := ssd.New(liveSSD())
	if err != nil {
		f.Fatal(err)
	}
	n := &LiveNode{
		dev:         dev,
		remote:      core.NewRemoteStore(128),
		remoteData:  make(map[int64][]byte),
		remoteStamp: make(map[int64]uint64),
	}
	ps := dev.PageSize()
	n.pagePool.New = func() any { return make([]byte, ps) }

	well := &Message{Type: MsgResync, Seq: 1, LPNs: []int64{0, 3}, Stamps: []uint64{5, 6}, Data: make([]byte, 2*ps)}
	short := &Message{Type: MsgResync, Seq: 2, LPNs: []int64{1}, Stamps: []uint64{1}, Data: []byte{0xEE}}
	skewed := &Message{Type: MsgResync, Seq: 3, LPNs: []int64{2, 4}, Stamps: []uint64{7}, Data: make([]byte, 2*ps)}
	hostile := &Message{Type: MsgResync, Seq: 4, LPNs: []int64{-9, 1 << 50}, Stamps: []uint64{^uint64(0), 0}, Data: make([]byte, 2*ps)}
	for _, m := range []*Message{well, short, skewed, hostile} {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		// Every decodable message is retyped into the resync path so the
		// handler's shape validation sees the full input space, not just
		// the tiny fraction that fuzzed the type byte right.
		m.Type = MsgResync
		resp := n.handle(&m)
		if resp == nil {
			t.Fatal("handler returned no response")
		}
		if resp.Type != MsgResyncAck && resp.Type != MsgError {
			t.Fatalf("resync frame answered with %v, want resync-ack or error", resp.Type)
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("decoded resync frame failed to re-marshal: %v", err)
		}
		var m2 Message
		if err := m2.Unmarshal(b); err != nil {
			t.Fatalf("re-marshaled resync frame failed to decode: %v", err)
		}
		if !messagesEqual(&m, &m2) {
			t.Fatalf("round trip changed the frame:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// FuzzReadFrameV2 feeds arbitrary byte streams to the version-sniffing
// frame reader with v2 seeds: it must reject garbage (including frames
// with valid headers and corrupted bodies — the CRC's job) with an
// error, never panic, and any accepted frame must survive a v2
// re-encode/read round trip.
func FuzzReadFrameV2(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := WriteFrameV2(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{FrameMagicV2})
	f.Add([]byte{FrameMagicV2, FrameVersion2, 0, 0})
	f.Add([]byte{FrameMagicV2, FrameVersion2, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0})
	f.Add([]byte{FrameMagicV2, 0xFF, 1, 2, 0xDE, 0xAD, 0xBE, 0xEF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrameV2(&buf, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode as v2: %v", err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded v2 frame failed to read back: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("v2 round trip changed the message:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// FuzzDecodeMembership decodes arbitrary bytes as a MsgMembership frame
// and runs it through the membership validator at several local epochs:
// the validator must never panic, must reject zero/stale epochs and
// malformed member lists, and any frame it accepts must satisfy the
// invariants SetMembers relies on (strictly newer epoch; non-empty,
// unique, non-empty-string members) and survive a marshal round trip.
func FuzzDecodeMembership(f *testing.F) {
	seeds := []*Message{
		{Type: MsgMembership, Epoch: 2, Members: []string{"10.0.0.1:7000", "10.0.0.2:7001"}},
		{Type: MsgMembership, Epoch: 9, Origin: "10.0.0.3:7002",
			Members: []string{"10.0.0.1:7000", "10.0.0.2:7001", "10.0.0.3:7002", "10.0.0.4:7003"}},
		{Type: MsgMembership, Epoch: 1, Members: []string{"a:1", "a:1"}},       // duplicate
		{Type: MsgMembership, Epoch: 1, Members: []string{""}},                 // empty ID
		{Type: MsgMembership, Epoch: 0, Members: []string{"a:1", "b:2"}},       // zero epoch
		{Type: MsgMembership, Epoch: ^uint64(0), Members: []string{"x:1"}},     // max epoch
		{Type: MsgMembership, Epoch: 3},                                        // no members
		{Type: MsgMembership, Epoch: 5, Members: ringMembers(16), Origin: "q"}, // big ring
	}
	for _, m := range seeds {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		m.Type = MsgMembership
		for _, cur := range []uint64{0, 1, m.Epoch, ^uint64(0)} {
			err := checkMembership(&m, cur)
			if err != nil {
				continue
			}
			if m.Epoch == 0 || m.Epoch <= cur {
				t.Fatalf("validator accepted epoch %d at current %d", m.Epoch, cur)
			}
			if len(m.Members) == 0 {
				t.Fatal("validator accepted empty member list")
			}
			seen := map[string]bool{}
			for _, id := range m.Members {
				if id == "" {
					t.Fatal("validator accepted empty member ID")
				}
				if seen[id] {
					t.Fatalf("validator accepted duplicate member %q", id)
				}
				seen[id] = true
			}
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("decoded membership frame failed to re-marshal: %v", err)
		}
		var m2 Message
		if err := m2.Unmarshal(b); err != nil {
			t.Fatalf("re-marshaled membership frame failed to decode: %v", err)
		}
		if !messagesEqual(&m, &m2) {
			t.Fatalf("round trip changed the frame:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// FuzzDecodeEpoch decodes arbitrary bytes as a MsgWriteFwd frame and feeds
// it to a node sitting at a nonzero ownership epoch: the epoch gate plus
// the stamp-guarded backup insert must never panic, must answer every
// frame with write-ack or error, and must never ack a frame routed under
// a stale epoch — that is the invariant that keeps late traffic from a
// previous ring layout out of the backup holds.
func FuzzDecodeEpoch(f *testing.F) {
	const curEpoch = 5
	dev, err := ssd.New(liveSSD())
	if err != nil {
		f.Fatal(err)
	}
	// A bare node, as in FuzzDecodeResync: the epoch gate and backup
	// insert only need the hold side. RemotePages bounds the per-origin
	// holds fuzzed Origins create.
	n := &LiveNode{
		dev:         dev,
		remote:      core.NewRemoteStore(128),
		remoteData:  make(map[int64][]byte),
		remoteStamp: make(map[int64]uint64),
	}
	n.cfg.RemotePages = 128
	n.pageSize = dev.PageSize()
	n.pagePool.New = func() any { return make([]byte, n.pageSize) }
	n.epochA.Store(curEpoch)

	ps := dev.PageSize()
	fresh := &Message{Type: MsgWriteFwd, LPNs: []int64{0}, Stamps: []uint64{1}, Data: make([]byte, ps),
		Origin: "10.0.0.1:7000", Epoch: curEpoch}
	newer := &Message{Type: MsgWriteFwd, LPNs: []int64{1}, Stamps: []uint64{2}, Data: make([]byte, ps),
		Origin: "10.0.0.1:7000", Epoch: curEpoch + 3}
	stale := &Message{Type: MsgWriteFwd, LPNs: []int64{2}, Stamps: []uint64{3}, Data: make([]byte, ps),
		Origin: "10.0.0.2:7001", Epoch: curEpoch - 1}
	pair := &Message{Type: MsgWriteFwd, LPNs: []int64{3}, Stamps: []uint64{4}, Data: make([]byte, ps)}
	for _, m := range []*Message{fresh, newer, stale, pair} {
		b, err := m.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		m.Type = MsgWriteFwd
		resp := n.handle(&m)
		if resp == nil {
			t.Fatal("handler returned no response")
		}
		switch resp.Type {
		case MsgWriteAck:
			if m.Epoch != 0 && m.Epoch < curEpoch {
				t.Fatalf("stale epoch %d acked at current %d", m.Epoch, curEpoch)
			}
		case MsgError:
		default:
			t.Fatalf("forward frame answered with %v, want write-ack or error", resp.Type)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the length-prefixed frame
// reader: it must reject garbage with an error, never panic, and never
// accept a frame whose re-encoding differs.
func FuzzReadFrame(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		m2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to read back: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("frame round trip changed the message:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// FuzzDecodeSlot feeds arbitrary bytes to the v1 page-store record
// decoder: it must never panic, never accept a record whose checksum or
// self-description is wrong, and any live record it does accept must
// re-encode to the identical bytes — the property that makes scrub and
// repair trustworthy against torn, misdirected, and bit-rotted writes.
func FuzzDecodeSlot(f *testing.F) {
	const ps = 64
	live := make([]byte, slotHeaderSize+ps)
	encodeSlot(live, 42, 7, bytes.Repeat([]byte{0x5A}, ps))
	free := make([]byte, slotHeaderSize+ps)
	encodeFreeSlot(free)
	f.Add(live)
	f.Add(free)
	flipped := append([]byte(nil), live...)
	flipped[slotHeaderSize] ^= 1
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(live[:slotHeaderSize]) // truncated: header only
	f.Fuzz(func(t *testing.T, data []byte) {
		// Wrong-length inputs must be rejected, not sliced out of bounds.
		if _, _, _, ok := decodeSlot(data, ps); ok && len(data) != slotHeaderSize+ps {
			t.Fatalf("decoder accepted %d bytes as a %d-byte record", len(data), slotHeaderSize+ps)
		}
		dps := len(data) - slotHeaderSize
		if dps < 0 {
			return
		}
		lpn, stamp, isFree, ok := decodeSlot(data, dps)
		if !ok {
			return
		}
		if isFree {
			if lpn != freeSlotMarker || stamp != 0 {
				t.Fatalf("accepted free slot decodes to lpn=%d stamp=%d", lpn, stamp)
			}
			return
		}
		if lpn < 0 {
			t.Fatalf("accepted live record with negative lpn %d", lpn)
		}
		re := make([]byte, len(data))
		encodeSlot(re, lpn, stamp, data[slotHeaderSize:])
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted record is not canonical:\n  got  % x\n  want % x", data, re)
		}
	})
}
