package cluster

import (
	"errors"
	"sync"
	"sync/atomic"

	"flashcoop/internal/core"
	"flashcoop/internal/stream"
)

// errPeerRemoved aborts forwards caught in a membership change that
// removed their partner link.
var errPeerRemoved = errors.New("cluster: peer removed from ring")

// peerLink bundles everything the node runs per cooperative partner: the
// pipelined client, a dedicated group-commit forwarder (queue + loop), a
// circuit breaker, a prober, a degraded-write journal, and one lifecycle
// state machine. A pair node has exactly one link; a ring node has one
// per fellow member. All lifecycle and journal state is guarded by the
// NODE's mutex (n.mu) — per-link mutexes would buy little (membership
// changes are rare, lifecycle events cheap) and a single lock keeps the
// "journal empty → flip Healthy" race-freedom argument identical to the
// pair code.
type peerLink struct {
	n      *LiveNode
	id     string // ring member ID == the partner's listen address
	client *peerClient

	fwdq      chan fwdEntry
	probeKick chan struct{} // buffered(1): wakes the prober out of its backoff sleep
	stop      chan struct{} // closed on removal or node shutdown
	stopOnce  sync.Once
	wg        sync.WaitGroup // forwarder, prober, and in-flight ack waiters

	brk breaker

	// Guarded by n.mu.
	lc            lifecycle
	proberRunning bool
	removed       bool
	outage        map[int64]uint64 // degraded-write journal for THIS partner: lpn → stamp

	// alive mirrors lc.alive() so hot paths read one atomic per link.
	alive atomic.Bool
	// pressure is the partner's last gossiped GC pressure (float bits).
	pressure atomic.Uint64

	// resyncMu serializes rejoin walks and journal pushes for this link.
	resyncMu sync.Mutex
}

// newLinkLocked constructs (but does not start) a link to the given
// partner. Caller holds n.mu.
func (n *LiveNode) newLinkLocked(id string) *peerLink {
	return &peerLink{
		n:         n,
		id:        id,
		client:    newPeerClient(id, n.cfg.CallTimeout, n.cfg.Dialer),
		fwdq:      make(chan fwdEntry, n.cfg.ForwardQueue),
		probeKick: make(chan struct{}, 1),
		stop:      make(chan struct{}),
		brk:       breaker{threshold: int64(n.cfg.BreakerThreshold), window: int32(n.cfg.BreakerWindow)},
		lc:        lifecycle{state: StateDegraded, threshold: n.cfg.FailureThreshold},
		outage:    make(map[int64]uint64),
	}
}

// start launches the link's forwarder goroutine.
func (l *peerLink) start() {
	l.wg.Add(1)
	go l.forwardLoop()
}

// halt stops the link: the forwarder aborts (failing queued entries), the
// client's session dies (failing in-flight calls fast), and the prober
// exits on its next wakeup. Callers that need the goroutines gone wait on
// l.wg afterwards. Safe to call more than once.
func (l *peerLink) halt() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.client.close()
}

// noteForwardFailed feeds one hard forward failure into the link's
// lifecycle and executes the demanded action. Must be called without n.mu.
func (l *peerLink) noteForwardFailed() {
	n := l.n
	n.mu.Lock()
	act := l.lc.forwardFailed()
	n.syncAliveLocked()
	n.mu.Unlock()
	n.applyLinkAction(l, act)
}

// ringState is the immutable routing snapshot hot paths read through one
// atomic load: the ring layout (nil in pair mode), the ownership epoch,
// this node's member ID, and the live partner links. Membership changes
// and SetPeer publish a fresh snapshot under n.mu.
type ringState struct {
	ring  *Ring // nil = pair mode: links[0] owns every block
	epoch uint64
	self  string
	links []*peerLink
	byID  map[string]*peerLink
}

// ownerLinks appends the links owning lpn's erase block under this
// snapshot. Pair mode: the single link owns everything.
func (rs *ringState) ownerLinks(out []*peerLink, lpn int64, ppb int) []*peerLink {
	if rs.ring == nil {
		return append(out, rs.links...)
	}
	block := lpn / int64(ppb)
	if lpn < 0 && lpn%int64(ppb) != 0 {
		block--
	}
	ids := make([]string, 0, rs.ring.Replicas())
	rs.ring.appendOwners(&ids, BlockKey(rs.self, block), rs.self)
	for _, id := range ids {
		if l := rs.byID[id]; l != nil {
			out = append(out, l)
		}
	}
	return out
}

// publishRSLocked rebuilds the atomic routing snapshot from the node's
// current links and ring. Caller holds n.mu.
func (n *LiveNode) publishRSLocked() {
	if len(n.links) == 0 {
		n.rs.Store(nil)
		n.epochA.Store(n.epoch)
		return
	}
	rs := &ringState{
		ring:  n.ring,
		epoch: n.epoch,
		self:  n.selfID,
		links: append([]*peerLink(nil), n.links...),
		byID:  make(map[string]*peerLink, len(n.links)),
	}
	for _, l := range n.links {
		rs.byID[l.id] = l
	}
	n.rs.Store(rs)
	n.epochA.Store(n.epoch)
}

// linksSnapshot returns the current partner links without holding n.mu
// afterwards.
func (n *LiveNode) linksSnapshot() []*peerLink {
	rs := n.rs.Load()
	if rs == nil {
		return nil
	}
	return rs.links
}

// linkByOrigin resolves the link a partner frame came from. Pair-mode
// frames carry no origin; with exactly one link it is unambiguous.
func (n *LiveNode) linkByOrigin(origin string) *peerLink {
	rs := n.rs.Load()
	if rs == nil {
		return nil
	}
	if origin == "" {
		if len(rs.links) == 1 {
			return rs.links[0]
		}
		return nil
	}
	return rs.byID[origin]
}

// remoteHold is one origin's backup state on the receiving side: the RCT
// occupancy model plus the payload and stamp maps. The pair-mode default
// hold (origin "") aliases the node's legacy remote fields; ring origins
// get their own, created on first insert and sized by the remote-budget
// split. All holds are guarded by n.mu.
type remoteHold struct {
	store *core.RemoteStore
	data  map[int64][]byte
	stamp map[int64]uint64
	// winInserts counts backup pages inserted since the last rebalance
	// round: the per-origin write-intensity window that drives the Eq. 1
	// style budget split (see RebalanceOnce).
	winInserts int64
}

// holdForLocked resolves the backup hold for an origin, optionally
// creating it. Caller holds n.mu.
func (n *LiveNode) holdForLocked(origin string, create bool) *remoteHold {
	if origin == "" {
		if n.defHold == nil {
			n.defHold = &remoteHold{store: n.remote, data: n.remoteData, stamp: n.remoteStamp}
		}
		return n.defHold
	}
	if h, ok := n.remotes[origin]; ok {
		return h
	}
	if !create {
		return nil
	}
	if n.remotes == nil {
		n.remotes = make(map[string]*remoteHold)
	}
	// Initial share: an even split of the remote budget across the
	// origins currently backing up here (including this new one); the
	// rebalance loop reshapes the split by observed write intensity.
	share := n.cfg.RemotePages / (len(n.remotes) + 1)
	if share < 1 {
		share = 1
	}
	h := &remoteHold{
		store: core.NewRemoteStore(share),
		data:  make(map[int64][]byte),
		stamp: make(map[int64]uint64),
	}
	n.remotes[origin] = h
	return h
}

// gcHoldLocked drops payloads whose RCT entries were evicted by
// remote-store overflow. Caller holds n.mu.
func (n *LiveNode) gcHoldLocked(h *remoteHold) {
	if len(h.data) <= h.store.Len() {
		return
	}
	for lpn, pg := range h.data {
		if !h.store.Contains(lpn) {
			n.putPage(pg)
			delete(h.data, lpn)
			delete(h.stamp, lpn)
		}
	}
}

// fwdGroup is the slice of one write's pages destined for one partner
// link during forward planning.
type fwdGroup struct {
	link *peerLink
	idxs []int // page indexes into the write's lpns/stamps/data
	err  error
}

// finalize materializes the group's wire slices. When the group covers
// the whole write (the pair case, and the common ring case of a write
// within one erase block) the caller's slices ride through zero-copy;
// a split write copies its pages into a contiguous buffer per group.
func (g *fwdGroup) finalize(lpns []int64, stamps []uint64, data []byte, ps int) ([]int64, []uint64, []byte) {
	if len(g.idxs) == len(lpns) {
		return lpns, stamps, data
	}
	gl := make([]int64, len(g.idxs))
	gs := make([]uint64, len(g.idxs))
	gd := make([]byte, len(g.idxs)*ps)
	for i, idx := range g.idxs {
		gl[i] = lpns[idx]
		gs[i] = stamps[idx]
		copy(gd[i*ps:(i+1)*ps], data[idx*ps:(idx+1)*ps])
	}
	return gl, gs, gd
}

// planForward groups a write's pages by live owner link and collects, per
// page, the down owners whose journal must record the write-through.
// Pages with at least one down owner force the degraded path for the
// whole request (conservative: with one link this reduces exactly to the
// pair behavior).
func (n *LiveNode) planForward(rs *ringState, lpns []int64) (groups []*fwdGroup, targets map[int64][]*peerLink) {
	byLink := make(map[*peerLink]*fwdGroup, 1)
	var owners []*peerLink
	lastBlock := int64(-1 << 62)
	haveBlock := false
	for i, lpn := range lpns {
		block := lpn / int64(n.ppb)
		if lpn < 0 && lpn%int64(n.ppb) != 0 {
			block--
		}
		if !haveBlock || block != lastBlock {
			owners = rs.ownerLinks(owners[:0], lpn, n.ppb)
			lastBlock, haveBlock = block, true
		}
		for _, l := range owners {
			if l.alive.Load() {
				g := byLink[l]
				if g == nil {
					g = &fwdGroup{link: l}
					byLink[l] = g
					groups = append(groups, g)
				}
				g.idxs = append(g.idxs, i)
			} else {
				if targets == nil {
					targets = make(map[int64][]*peerLink)
				}
				targets[lpn] = append(targets[lpn], l)
			}
		}
	}
	return groups, targets
}

// enqueueDiscardRouted fans an advisory discard out to the live owner
// link of each page. Pair mode short-circuits to the single link; ring
// mode groups pages per owner so every partner only hears about backups
// it actually holds.
func (n *LiveNode) enqueueDiscardRouted(lpns []int64, stamps []uint64, strms []stream.Stream) {
	rs := n.rs.Load()
	if rs == nil {
		return
	}
	if rs.ring == nil {
		l := rs.links[0]
		if l.alive.Load() {
			l.enqueueDiscard(lpns, stamps, strms)
		}
		return
	}
	type group struct {
		lpns   []int64
		stamps []uint64
		strms  []stream.Stream
	}
	byLink := make(map[*peerLink]*group, 1)
	var owners []*peerLink
	for i, lpn := range lpns {
		owners = rs.ownerLinks(owners[:0], lpn, n.ppb)
		for _, l := range owners {
			if !l.alive.Load() {
				continue
			}
			g := byLink[l]
			if g == nil {
				g = &group{}
				byLink[l] = g
			}
			g.lpns = append(g.lpns, lpn)
			g.stamps = append(g.stamps, stamps[i])
			if strms != nil {
				g.strms = append(g.strms, strms[i])
			}
		}
	}
	for l, g := range byLink {
		l.enqueueDiscard(g.lpns, g.stamps, g.strms)
	}
}

// applyLinkAction executes the side effect a link's lifecycle event
// demanded; it must be called without n.mu held.
func (n *LiveNode) applyLinkAction(l *peerLink, act lcAction) {
	switch act {
	case lcFailover:
		atomic.AddInt64(&n.stats.Failovers, 1)
		l.startProber()
		// The partner holding this link's backups failed: buffered dirty
		// data has lost (part of) its backup; make it durable immediately
		// (paper Section III.D). With several links this over-flushes —
		// pages owned by still-healthy partners get persisted too — which
		// costs write amplification, never correctness.
		if err := n.FlushAll(); err != nil {
			_ = err
		}
	case lcKickProbe:
		l.startProber()
		select {
		case l.probeKick <- struct{}{}:
		default:
		}
	}
}
