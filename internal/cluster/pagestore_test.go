package cluster

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestMemStoreBasics(t *testing.T) {
	s := newMemStore()
	if s.get(1) != nil || s.pages() != 0 {
		t.Fatal("empty store not empty")
	}
	if err := s.put(1, []byte{0xAA}, 5); err != nil {
		t.Fatal(err)
	}
	if got := s.get(1); got == nil || got[0] != 0xAA {
		t.Fatal("get after put wrong")
	}
	if st, ok := s.getStamp(1); !ok || st != 5 {
		t.Fatalf("stamp = %d, %v; want 5, true", st, ok)
	}
	if s.maxStamp() != 5 {
		t.Fatalf("maxStamp = %d", s.maxStamp())
	}
	if err := s.remove(1); err != nil {
		t.Fatal(err)
	}
	if s.get(1) != nil || s.pages() != 0 {
		t.Fatal("remove failed")
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const ps = 512
	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	pg := func(fill byte) []byte {
		p := make([]byte, ps)
		for i := range p {
			p[i] = fill
		}
		return p
	}
	for i := int64(0); i < 20; i++ {
		if err := s.put(i*7, pg(byte(i)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite reuses the slot (and bumps the stamp).
	if err := s.put(0, pg(0xEE), 42); err != nil {
		t.Fatal(err)
	}
	if s.pages() != 20 {
		t.Fatalf("pages = %d", s.pages())
	}
	if got := s.get(0); !bytes.Equal(got, pg(0xEE)) {
		t.Fatal("overwrite lost")
	}
	// Remove frees a slot that a later put reuses.
	if err := s.remove(7); err != nil {
		t.Fatal(err)
	}
	slotsBefore := s.slots
	if err := s.put(999, pg(0x77), 43); err != nil {
		t.Fatal(err)
	}
	if s.slots != slotsBefore {
		t.Fatal("free slot not reused")
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything except the removed page survives.
	s2, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	if s2.pages() != 20 {
		t.Fatalf("pages after reopen = %d", s2.pages())
	}
	if got := s2.get(0); !bytes.Equal(got, pg(0xEE)) {
		t.Fatal("page 0 lost across restart")
	}
	if s2.get(7) != nil {
		t.Fatal("removed page resurrected")
	}
	if got := s2.get(999); !bytes.Equal(got, pg(0x77)) {
		t.Fatal("page 999 lost across restart")
	}
	// Write stamps survive the restart too: recovery relies on them to
	// rank durable data against peer backups.
	if st, ok := s2.getStamp(0); !ok || st != 42 {
		t.Fatalf("stamp of page 0 after reopen = %d, %v; want 42, true", st, ok)
	}
	if s2.maxStamp() != 43 {
		t.Fatalf("maxStamp after reopen = %d; want 43", s2.maxStamp())
	}
}

func TestFileStoreRejectsWrongPageSize(t *testing.T) {
	dir := t.TempDir()
	s, err := newFileStore(dir, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.put(0, make([]byte, 100), 1); err == nil {
		t.Fatal("short put accepted")
	}
	if err := s.put(0, make([]byte, 512), 1); err != nil {
		t.Fatal(err)
	}
	s.close()
	// Reopening with a different page size is detected.
	if _, err := newFileStore(dir, 4096, false); err == nil {
		t.Fatal("page-size mismatch not detected")
	}
}

func TestFileStoreFuzzAgainstMem(t *testing.T) {
	dir := t.TempDir()
	const ps = 256
	fs, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.close()
	ms := newMemStore()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		lpn := rng.Int63n(64)
		switch rng.Intn(3) {
		case 0, 1:
			pg := make([]byte, ps)
			rng.Read(pg)
			st := uint64(i + 1)
			if err := fs.put(lpn, pg, st); err != nil {
				t.Fatal(err)
			}
			if err := ms.put(lpn, pg, st); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := fs.remove(lpn); err != nil {
				t.Fatal(err)
			}
			if err := ms.remove(lpn); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fs.pages() != ms.pages() {
		t.Fatalf("pages: file %d != mem %d", fs.pages(), ms.pages())
	}
	for lpn := int64(0); lpn < 64; lpn++ {
		a, b := fs.get(lpn), ms.get(lpn)
		if (a == nil) != (b == nil) || (a != nil && !bytes.Equal(a, b)) {
			t.Fatalf("divergence at lpn %d", lpn)
		}
		sa, oka := fs.getStamp(lpn)
		sb, okb := ms.getStamp(lpn)
		if oka != okb || sa != sb {
			t.Fatalf("stamp divergence at lpn %d: file (%d,%v) mem (%d,%v)", lpn, sa, oka, sb, okb)
		}
	}
}

// TestLiveNodeDurableRestart is the end-to-end durability story: a node
// with a DataDir persists flushed data; after a clean shutdown a new node
// over the same directory serves it back.
func TestLiveNodeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *LiveNode {
		n, err := NewLiveNode(LiveConfig{
			Name: "durable", ListenAddr: "127.0.0.1:0",
			BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
			DataDir:     dir,
			CallTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n := mk()
	ps := n.Device().PageSize()
	for i := int64(0); i < 10; i++ {
		if err := n.Write(i, page(byte(0x40+i), ps)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil { // flushes dirty data to the file store
		t.Fatal(err)
	}

	n2 := mk()
	defer n2.Close()
	for i := int64(0); i < 10; i++ {
		got, err := n2.Read(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x40+i) {
			t.Fatalf("page %d lost across restart: %x", i, got[0])
		}
	}
}
