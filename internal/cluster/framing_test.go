package cluster

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// canonMsg normalizes a hand-built message through a marshal round trip
// so nil and empty slices compare equal against decoder output.
func canonMsg(t *testing.T, m *Message) *Message {
	t.Helper()
	b, err := m.Marshal()
	if err != nil {
		t.Fatalf("canon marshal: %v", err)
	}
	var out Message
	if err := out.Unmarshal(b); err != nil {
		t.Fatalf("canon unmarshal: %v", err)
	}
	return &out
}

// TestFrameV2RoundTrip checks every seed message survives the v2 encoder
// and the sniffing reader, alone and on a stream mixing v1 and v2 frames
// (the compatibility decode path: an old peer's frames interleave with
// new ones on the same reader).
func TestFrameV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := fuzzSeedMessages()
	for i, m := range msgs {
		if i%2 == 0 {
			if err := WriteFrameV2(&buf, m); err != nil {
				t.Fatalf("msg %d: WriteFrameV2: %v", i, err)
			}
		} else {
			if err := WriteFrame(&buf, m); err != nil {
				t.Fatalf("msg %d: WriteFrame (v1): %v", i, err)
			}
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("msg %d: ReadFrame: %v", i, err)
		}
		if !messagesEqual(got, canonMsg(t, want)) {
			t.Fatalf("msg %d changed in flight:\n  sent: %+v\n  got:  %+v", i, want, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", buf.Len())
	}
}

// TestFrameV2Chunks checks the gather-list encoder: payload supplied as
// chunks must decode identically to the same payload carried in Data,
// including empty and multi-chunk splits.
func TestFrameV2Chunks(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	cases := [][][]byte{
		{payload},
		{payload[:7], payload[7:]},
		{payload[:1], {}, payload[1:20], payload[20:]},
	}
	for i, chunks := range cases {
		m := &Message{Type: MsgWriteFwd, Seq: uint64(i + 1), LPNs: []int64{1, 2}, Stamps: []uint64{3, 4}}
		bufs, sp, err := appendFrameV2(nil, m, chunks)
		if err != nil {
			t.Fatalf("case %d: appendFrameV2: %v", i, err)
		}
		var wire bytes.Buffer
		if _, err := bufs.WriteTo(&wire); err != nil {
			t.Fatalf("case %d: WriteTo: %v", i, err)
		}
		releaseFrameScratch(sp)
		got, err := ReadFrame(&wire)
		if err != nil {
			t.Fatalf("case %d: ReadFrame: %v", i, err)
		}
		if !bytes.Equal(got.Data, payload) {
			t.Fatalf("case %d: chunked payload decoded to %q, want %q", i, got.Data, payload)
		}
	}
	// Data and chunks together: chunks follow Data on the wire.
	m := &Message{Type: MsgWriteFwd, Seq: 9, Data: []byte("head-")}
	bufs, sp, err := appendFrameV2(nil, m, [][]byte{[]byte("tail")})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := bufs.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	releaseFrameScratch(sp)
	got, err := ReadFrame(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "head-tail" {
		t.Fatalf("Data+chunks decoded to %q, want %q", got.Data, "head-tail")
	}
}

// TestFrameV2Corruption flips every byte of a valid v2 frame in turn:
// each mutation must be rejected (checksum, header validation, or decode
// error), never silently accepted as a different message and never a
// panic. This is the property v1 never had — it trusted TCP end to end.
func TestFrameV2Corruption(t *testing.T) {
	m := &Message{Type: MsgWriteFwd, Seq: 77, LPNs: []int64{5, 6}, Stamps: []uint64{8, 9}, Data: []byte("payload-bytes")}
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		got, err := ReadFrame(bytes.NewReader(mut))
		if err == nil {
			// Flipping a bit inside the CRC of an otherwise-intact frame
			// can never collide, and any body flip must break the CRC; the
			// only way to "succeed" is to decode the original message —
			// which a single flip cannot reproduce.
			t.Fatalf("byte %d flipped: frame accepted as %+v", i, got)
		}
	}
}

// TestFrameV2Truncation feeds every strict prefix of a valid frame: all
// must fail with an error (EOF family or decode error), never block the
// wrong way or panic.
func TestFrameV2Truncation(t *testing.T) {
	m := &Message{Type: MsgResync, Seq: 3, LPNs: []int64{1}, Stamps: []uint64{2}, Data: []byte("abcdexyz")}
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for n := 0; n < len(frame); n++ {
		if _, err := ReadFrame(bytes.NewReader(frame[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(frame))
		}
	}
}

// TestFrameV2HeaderValidation checks the reserved bytes, version, and
// length bounds are enforced before any body is read.
func TestFrameV2HeaderValidation(t *testing.T) {
	m := &Message{Type: MsgHello, Seq: 1}
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, m); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	for _, tc := range []struct {
		name string
		mut  func([]byte)
	}{
		{"bad version", func(b []byte) { b[1] = 0x03 }},
		{"reserved byte 2", func(b []byte) { b[2] = 1 }},
		{"reserved byte 3", func(b []byte) { b[3] = 0xFF }},
	} {
		mut := append([]byte(nil), frame...)
		tc.mut(mut)
		_, err := ReadFrame(bytes.NewReader(mut))
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", tc.name, err)
		}
	}

	// Oversized length: header claims more than MaxFrameBytes.
	mut := append([]byte(nil), frame...)
	mut[4], mut[5], mut[6], mut[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length: got %v, want ErrFrameTooLarge", err)
	}

	// Checksum mismatch surfaces as ErrChecksum specifically.
	mut = append([]byte(nil), frame...)
	mut[8] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Errorf("bad checksum: got %v, want ErrChecksum", err)
	}
}

// TestFrameV2OversizeEncode checks the encoder refuses to build a frame
// past MaxFrameBytes instead of emitting one the reader would reject.
func TestFrameV2OversizeEncode(t *testing.T) {
	m := &Message{Type: MsgWriteFwd, Seq: 1}
	big := make([]byte, MaxFrameBytes)
	_, sp, err := appendFrameV2(nil, m, [][]byte{big})
	if sp != nil {
		releaseFrameScratch(sp)
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameV2ScratchReuse exercises the scratch pool across many frames
// with payload sizes around the pool block capacity, ensuring a recycled
// block never leaks bytes between frames.
func TestFrameV2ScratchReuse(t *testing.T) {
	for i := 0; i < 64; i++ {
		lpns := make([]int64, (i*37)%700)
		stamps := make([]uint64, len(lpns))
		for j := range lpns {
			lpns[j], stamps[j] = int64(i*1000+j), uint64(j)
		}
		m := &Message{Type: MsgDiscard, Seq: uint64(i), LPNs: lpns, Stamps: stamps}
		var wire bytes.Buffer
		if err := WriteFrameV2(&wire, m); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := ReadFrame(&wire)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(got, m) {
			t.Fatalf("frame %d changed through pooled encode", i)
		}
	}
}

// TestFrameV2GatherWritev checks a whole batch appended into one
// net.Buffers writes every frame intact — the writeLoop's send path.
func TestFrameV2GatherWritev(t *testing.T) {
	var (
		bufs    net.Buffers
		scratch []*[]byte
		msgs    = fuzzSeedMessages()
	)
	for _, m := range msgs {
		nb, sp, err := appendFrameV2(bufs, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		bufs, scratch = nb, append(scratch, sp)
	}
	var wire bytes.Buffer
	if _, err := bufs.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	for _, sp := range scratch {
		releaseFrameScratch(sp)
	}
	for i, want := range msgs {
		got, err := ReadFrame(&wire)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(got, canonMsg(t, want)) {
			t.Fatalf("frame %d changed in the gathered batch", i)
		}
	}
	if _, err := ReadFrame(&wire); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after the batch, got %v", err)
	}
}
