//go:build !linux

package cluster

import "os"

// datasync falls back to a full fsync where fdatasync is unavailable.
func datasync(f *os.File) error {
	return f.Sync()
}

// hasSyncFS is false off Linux: without syncfs(2) a single syscall cannot
// cover sibling section files, so the group-commit coordinator stays on
// per-section fsyncs and stores never advertise the barrier capability.
const hasSyncFS = false

// syncFilesystem is never reached when hasSyncFS is false; syncing just f
// is the only sound per-file approximation if it ever is.
func syncFilesystem(f *os.File) error {
	return f.Sync()
}
