package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// scanRecord finds lpn's live record in a v1 store file, returning its
// stamp; when flip is set, one payload byte is inverted in place — the
// offline bit-rot primitive the integrity tests poke stores with.
func scanRecord(t *testing.T, path string, ps int, lpn int64, flip bool) uint64 {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	rs := int64(slotHeaderSize + ps)
	rec := make([]byte, rs)
	for off := int64(storeHeaderSize); off+rs <= st.Size(); off += rs {
		if _, err := f.ReadAt(rec, off); err != nil {
			t.Fatal(err)
		}
		glpn, gstamp, free, ok := decodeSlot(rec, ps)
		if !ok || free || glpn != lpn {
			continue
		}
		if flip {
			var b [1]byte
			f.ReadAt(b[:], off+slotHeaderSize)
			b[0] ^= 0xFF
			if _, err := f.WriteAt(b[:], off+slotHeaderSize); err != nil {
				t.Fatal(err)
			}
		}
		return gstamp
	}
	t.Fatalf("lpn %d has no live record in %s", lpn, path)
	return 0
}

func waitFor(t *testing.T, what string, d time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A record that rots while the node is live is caught by ScrubOnce,
// queued, and healed from the partner's backup copy via MsgRepair — and
// the partner's hold survives the read-only probe.
func TestLiveScrubRepairFromPeer(t *testing.T) {
	dir := t.TempDir()
	a, err := NewLiveNode(LiveConfig{
		Name: "a", ListenAddr: "127.0.0.1:0",
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		DataDir: dir, Shards: 1,
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLiveNode(LiveConfig{
		Name: "b", ListenAddr: "127.0.0.1:0", PeerAddr: a.Addr(),
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.SetPeer(b.Addr())
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer(); err != nil {
		t.Fatal(err)
	}

	ps := a.Device().PageSize()
	const lpn = int64(3)
	if err := a.Write(lpn, page(0xAB, ps)); err != nil {
		t.Fatal(err)
	}
	if err := a.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// FlushAll persists without discarding, so b still holds the backup —
	// the surviving replica repair will pull from.
	if !b.RemoteContains(lpn) {
		t.Fatal("no backup on partner after flush")
	}

	// Rot the durable record behind the node's back, then scrub.
	scanRecord(t, filepath.Join(dir, shardStoreName(0)), ps, lpn, true)
	checked, corrupt := a.ScrubOnce()
	if checked == 0 || corrupt == 0 {
		t.Fatalf("ScrubOnce = (%d, %d), want the rotted record found", checked, corrupt)
	}
	if a.Stats().CorruptSlots == 0 || a.Stats().ScrubPasses == 0 {
		t.Fatalf("stats after scrub: %+v", a.Stats())
	}

	waitFor(t, "ring repair of rotted page", 2*time.Second, func() bool {
		return a.Stats().RepairedPages >= 1
	})
	if got := a.store.get(lpn); got == nil || got[0] != 0xAB {
		t.Fatalf("repaired record = %v, want holder copy", got)
	}
	if _, corrupt := a.ScrubOnce(); corrupt != 0 {
		t.Fatalf("scrub after repair still finds %d corrupt records", corrupt)
	}
	if a.RepairQueueLen() != 0 {
		t.Fatalf("repair queue not drained: %d", a.RepairQueueLen())
	}
	// MsgRepair is a read-only probe: the hold must survive it.
	if !b.RemoteContains(lpn) {
		t.Fatal("repair probe cleaned the partner's hold")
	}
}

// Recovery with a corrupt local store AND a partially stale holder: the
// newest intact version of each page wins — the stale backup is skipped
// (StaleRecoverySkips), the corrupt page is healed from its equal-stamp
// backup (RepairedPages), and both counters advance in one pass.
func TestRecoveryRepairsCorruptSkipsStale(t *testing.T) {
	dir := t.TempDir()
	const lpnX, lpnY = int64(5), int64(6)
	mk := func(name, peer string) *LiveNode {
		cfg := LiveConfig{
			Name: name, ListenAddr: "127.0.0.1:0",
			BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
			DataDir: dir, Shards: 1,
			CallTimeout: 500 * time.Millisecond,
		}
		if name == "b" {
			cfg.DataDir = "" // the holder keeps backups in memory only
		}
		cfg.PeerAddr = peer
		n, err := NewLiveNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Life before the crash: a standalone node writes X then Y (degraded
	// write-through — no peer), so both are durable with ascending stamps.
	a1 := mk("a1", "")
	ps := a1.Device().PageSize()
	if err := a1.Write(lpnX, page(0x11, ps)); err != nil {
		t.Fatal(err)
	}
	if err := a1.Write(lpnY, page(0x22, ps)); err != nil {
		t.Fatal(err)
	}
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// Offline damage: X's durable payload rots. Y stays intact.
	path := filepath.Join(dir, shardStoreName(0))
	stX := scanRecord(t, path, ps, lpnX, true)
	stY := scanRecord(t, path, ps, lpnY, false)
	if stY <= stX {
		t.Fatalf("stamps not ascending: X=%d Y=%d", stX, stY)
	}

	// The holder: an equal-stamp copy of X (the only intact version left)
	// and a STALE copy of Y that a blind recovery would roll back to.
	b := mk("b", "")
	defer b.Close()
	if resp := b.handle(&Message{Type: MsgWriteFwd, Seq: 1,
		LPNs:   []int64{lpnX, lpnY},
		Stamps: []uint64{stX, stY - 1},
		Data:   append(page(0x33, ps), page(0x44, ps)...)}); resp.Type != MsgWriteAck {
		t.Fatalf("hold seeding answered %v", resp.Type)
	}

	// The restarted node notices X's rot at open, then recovers from b.
	a2 := mk("a2", b.Addr())
	defer a2.Close()
	if a2.Stats().CorruptSlots < 1 {
		t.Fatalf("open-time scan missed the rotted record: %+v", a2.Stats())
	}
	if err := a2.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := a2.RecoverFromPeer(); err != nil {
		t.Fatal(err)
	}

	got, err := a2.Read(lpnX, 1)
	if err != nil || got[0] != 0x33 {
		t.Fatalf("X after recovery = %x, %v; want the holder's intact copy", got[0], err)
	}
	got, err = a2.Read(lpnY, 1)
	if err != nil || got[0] != 0x22 {
		t.Fatalf("Y after recovery = %x, %v; want the local newer version", got[0], err)
	}
	s := a2.Stats()
	if s.StaleRecoverySkips < 1 {
		t.Fatalf("StaleRecoverySkips = %d, want >= 1 (stale Y backup must be skipped)", s.StaleRecoverySkips)
	}
	if s.RepairedPages < 1 {
		t.Fatalf("RepairedPages = %d, want >= 1 (corrupt X must count as repaired)", s.RepairedPages)
	}
}

// The background scrubber (ScrubInterval > 0) completes passes on its
// own; a memory-backed node has nothing to scrub and says so.
func TestBackgroundScrubber(t *testing.T) {
	n, err := NewLiveNode(LiveConfig{
		Name: "scrub", ListenAddr: "127.0.0.1:0",
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		DataDir:       t.TempDir(),
		ScrubInterval: 2 * time.Millisecond,
		CallTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ps := n.Device().PageSize()
	for i := int64(0); i < 8; i++ {
		if err := n.Write(i, page(byte(i), ps)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.FlushAll(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a background scrub pass", 2*time.Second, func() bool {
		return n.Stats().ScrubPasses >= 1
	})
	if n.Stats().CorruptSlots != 0 {
		t.Fatalf("scrubber flagged healthy records: %+v", n.Stats())
	}

	mem, err := NewLiveNode(LiveConfig{
		Name: "mem", ListenAddr: "127.0.0.1:0",
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if checked, corrupt := mem.ScrubOnce(); checked != 0 || corrupt != 0 {
		t.Fatalf("memory-store ScrubOnce = (%d, %d), want (0, 0)", checked, corrupt)
	}
}
