package cluster

import (
	"net"
	"testing"
	"time"

	"flashcoop/internal/testutil"
)

// TestNoLeakHeartbeatCloseRace closes a node immediately after starting
// its heartbeat, across several timings: the monitor goroutine must wind
// down whether it never ticked, is mid-call against a dead partner, or is
// waiting out the dial backoff.
func TestNoLeakHeartbeatCloseRace(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)

	// A dead partner address: reserve a port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	for _, delay := range []time.Duration{0, 5 * time.Millisecond, 30 * time.Millisecond} {
		n, err := NewLiveNode(LiveConfig{
			Name: "hb", ListenAddr: "127.0.0.1:0", PeerAddr: deadAddr,
			BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
			HeartbeatInterval: 2 * time.Millisecond,
			CallTimeout:       50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.StartHeartbeat()
		time.Sleep(delay)
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	verify()
}

// TestNoLeakRecoverFromPeerError drives RecoverFromPeer down its failure
// paths — no peer configured, peer unreachable, peer gone mid-exchange —
// and verifies nothing is left running afterwards.
func TestNoLeakRecoverFromPeerError(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)

	// Solo node: errNoPeer, trivially.
	solo, err := NewLiveNode(LiveConfig{
		Name: "solo", ListenAddr: "127.0.0.1:0",
		BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.RecoverFromPeer(); err == nil {
		t.Fatal("recovery without a peer should fail")
	}
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}

	// Peer address with nobody listening: the fetch call fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	orphan, err := NewLiveNode(LiveConfig{
		Name: "orphan", ListenAddr: "127.0.0.1:0", PeerAddr: deadAddr,
		BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := orphan.RecoverFromPeer(); err == nil {
		t.Fatal("recovery against a dead peer should fail")
	}
	if err := orphan.Close(); err != nil {
		t.Fatal(err)
	}

	// Partner crashes between the node's connect and its recovery: the
	// in-flight fetch errors out rather than wedging the caller.
	a, b := livePair(t)
	b.Crash()
	if err := a.RecoverFromPeer(); err == nil {
		t.Fatal("recovery from a crashed peer should fail")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	verify()
}

// ringForLeak builds an n-node ring the leak tests tear down themselves
// (no t.Cleanup — the verifier must run after the last Close).
func ringForLeak(t *testing.T, n int) []*LiveNode {
	t.Helper()
	cfgs := make([]LiveConfig, n)
	for i := range cfgs {
		cfgs[i] = LiveConfig{
			Name: "lk", ListenAddr: "127.0.0.1:0",
			BufferPages: 16, RemotePages: 64, SSD: liveSSD(),
			HeartbeatInterval: 5 * time.Millisecond,
			FailureThreshold:  2,
			CallTimeout:       100 * time.Millisecond,
		}
	}
	nodes, err := NewLiveRing(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

// TestNoLeakRingCloseRace closes a whole ring at staggered points after
// startup: every member's per-link goroutine set (N-1 forwarders, peer
// clients, heartbeat monitor, probers mid-backoff) must wind down whether
// the node barely started or is in steady state.
func TestNoLeakRingCloseRace(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)
	for _, delay := range []time.Duration{0, 10 * time.Millisecond, 50 * time.Millisecond} {
		nodes := ringForLeak(t, 3)
		for _, m := range nodes {
			if err := m.ConnectPeer(); err != nil {
				t.Fatal(err)
			}
			m.StartHeartbeat()
		}
		// Kill one member first so the survivors' links to it degrade and
		// spin up probers; their backoff loops must also obey Close.
		nodes[2].Crash()
		time.Sleep(delay)
		for _, m := range nodes[:2] {
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	verify()
}

// TestNoLeakRingMemberRemoval removes a ring member by membership change —
// including a member that is down with probers chasing it and degraded
// writes journaled for it — and verifies the departed link's forwarder,
// prober, and client goroutines are reaped by the removal itself, not
// only by node shutdown.
func TestNoLeakRingMemberRemoval(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)
	nodes := ringForLeak(t, 4)
	for _, m := range nodes {
		if err := m.ConnectPeer(); err != nil {
			t.Fatal(err)
		}
		m.StartHeartbeat()
	}
	ps := nodes[0].Device().PageSize()

	// Healthy removal: drop nodes[3] from the layout. ProposeMembership
	// tells every surviving member; each must halt and reap its link.
	survivors := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}
	if _, err := nodes[0].ProposeMembership(survivors); err != nil {
		t.Fatal(err)
	}
	for _, m := range nodes[:3] {
		if got := len(m.PeerStates()); got != 2 {
			t.Fatalf("node %s still tracks %d links, want 2", m.cfg.Name, got)
		}
	}
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}

	// Down-member removal: crash nodes[2], let the survivors degrade and
	// start probing it, journal some degraded writes against it, then
	// remove it. The halt must stop a prober mid-backoff and abandon the
	// journal without wedging.
	nodes[2].Crash()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := nodes[0].PeerStates()[nodes[2].Addr()]
		if st == StateDegraded || st == StateProbing || st == StateResyncing {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for blk := 0; blk < 8; blk++ {
		if err := nodes[0].Write(int64(blk*nodes[0].ppb), page(0xAA, ps)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nodes[0].ProposeMembership([]string{nodes[0].Addr(), nodes[1].Addr()}); err != nil {
		t.Fatal(err)
	}
	if got := len(nodes[0].PeerStates()); got != 1 {
		t.Fatalf("node 0 still tracks %d links, want 1", got)
	}
	for _, m := range nodes[:2] {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	verify()
}
