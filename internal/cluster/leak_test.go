package cluster

import (
	"net"
	"testing"
	"time"

	"flashcoop/internal/testutil"
)

// TestNoLeakHeartbeatCloseRace closes a node immediately after starting
// its heartbeat, across several timings: the monitor goroutine must wind
// down whether it never ticked, is mid-call against a dead partner, or is
// waiting out the dial backoff.
func TestNoLeakHeartbeatCloseRace(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)

	// A dead partner address: reserve a port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	for _, delay := range []time.Duration{0, 5 * time.Millisecond, 30 * time.Millisecond} {
		n, err := NewLiveNode(LiveConfig{
			Name: "hb", ListenAddr: "127.0.0.1:0", PeerAddr: deadAddr,
			BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
			HeartbeatInterval: 2 * time.Millisecond,
			CallTimeout:       50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.StartHeartbeat()
		time.Sleep(delay)
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	verify()
}

// TestNoLeakRecoverFromPeerError drives RecoverFromPeer down its failure
// paths — no peer configured, peer unreachable, peer gone mid-exchange —
// and verifies nothing is left running afterwards.
func TestNoLeakRecoverFromPeerError(t *testing.T) {
	verify := testutil.CheckGoroutineLeak(t)

	// Solo node: errNoPeer, trivially.
	solo, err := NewLiveNode(LiveConfig{
		Name: "solo", ListenAddr: "127.0.0.1:0",
		BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.RecoverFromPeer(); err == nil {
		t.Fatal("recovery without a peer should fail")
	}
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}

	// Peer address with nobody listening: the fetch call fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	orphan, err := NewLiveNode(LiveConfig{
		Name: "orphan", ListenAddr: "127.0.0.1:0", PeerAddr: deadAddr,
		BufferPages: 8, RemotePages: 8, SSD: liveSSD(),
		CallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := orphan.RecoverFromPeer(); err == nil {
		t.Fatal("recovery against a dead peer should fail")
	}
	if err := orphan.Close(); err != nil {
		t.Fatal(err)
	}

	// Partner crashes between the node's connect and its recovery: the
	// in-flight fetch errors out rather than wedging the caller.
	a, b := livePair(t)
	b.Crash()
	if err := a.RecoverFromPeer(); err == nil {
		t.Fatal("recovery from a crashed peer should fail")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	verify()
}
