// Package cluster implements FlashCoop's cooperative-pair networking: a
// compact binary wire protocol, a length-framed connection type, and a live
// TCP storage node (LiveNode) that buffers writes, forwards backups to its
// partner, persists evicted blocks, exchanges heartbeats and workload
// information, and recovers dirty data from the partner after a crash.
//
// The simulation experiments (internal/experiments) use the deterministic
// in-process model from internal/core; this package is the same protocol
// running over real sockets, suitable for a two-machine deployment.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"flashcoop/internal/stream"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgWriteFwd // forward write backup: LPNs + page data
	MsgWriteAck
	MsgDiscard // drop backups for flushed pages: LPNs
	MsgDiscardAck
	MsgHeartbeat
	MsgHeartbeatAck
	MsgFetchRCT // request all backups held for me
	MsgRCTData  // response: LPNs + page data
	MsgCleanRemote
	MsgCleanAck
	MsgWorkloadInfo // dynamic-allocation exchange
	MsgWorkloadInfoAck
	MsgError
	MsgResync // re-replicate degraded writes after an outage: LPNs + Stamps + page data
	MsgResyncAck
	MsgMembership // propagate a ring layout: Epoch + Members
	MsgMembershipAck
	MsgRepair     // fetch newest backup copies of corrupt local pages: LPNs
	MsgRepairResp // response: LPNs + Stamps + page data (holder's subset)
)

// String names the message type.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgHello: "hello", MsgHelloAck: "hello-ack",
		MsgWriteFwd: "write-fwd", MsgWriteAck: "write-ack",
		MsgDiscard: "discard", MsgDiscardAck: "discard-ack",
		MsgHeartbeat: "heartbeat", MsgHeartbeatAck: "heartbeat-ack",
		MsgFetchRCT: "fetch-rct", MsgRCTData: "rct-data",
		MsgCleanRemote: "clean-remote", MsgCleanAck: "clean-ack",
		MsgWorkloadInfo: "workload-info", MsgWorkloadInfoAck: "workload-info-ack",
		MsgError:  "error",
		MsgResync: "resync", MsgResyncAck: "resync-ack",
		MsgMembership: "membership", MsgMembershipAck: "membership-ack",
		MsgRepair: "repair", MsgRepairResp: "repair-resp",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Info mirrors core.WorkloadInfo on the wire.
type Info struct {
	WriteFrac float64
	Mem       float64
	CPU       float64
	Net       float64
}

// Message is one protocol frame. Stamps, when present, runs parallel to
// LPNs and carries each page's write stamp — a node-local monotonic
// version that survives restarts — so the receiver can order a frame's
// pages against state it already holds (stale backups are never allowed
// to overwrite newer data; see livenode.go).
type Message struct {
	Type   MsgType
	Seq    uint64
	LPNs   []int64
	Stamps []uint64
	Data   []byte
	Info   Info
	Err    string
	// Streams, when present, runs parallel to LPNs and carries each
	// page's temperature tag so the receiver's FTL can keep the pair's
	// stream segregation intact across the backup path. Tags travel in an
	// optional trailing extension (see Marshal); frames from older
	// senders simply have none, and unknown tag bytes degrade to the
	// default stream rather than erroring.
	Streams []stream.Stream
	// Pressure is the sender's garbage-collection pressure in [0,1]
	// (ftl.FTL.GCPressure), gossiped on heartbeats and acks so each node
	// can defer non-urgent traffic toward a partner digesting GC. It
	// rides the same trailing extension as Streams.
	Pressure float64
	// Epoch is the sender's ownership epoch: the version of the ring
	// layout the frame was routed under. A receiver on a newer epoch
	// rejects data-plane frames from an older one, so late frames routed
	// by a previous ring layout can never land in the wrong backup hold.
	// Zero means "pair mode / no ring" and is never rejected. Epoch,
	// Origin, and Members ride a second trailing extension after
	// Pressure; frames without them encode byte-identically to the
	// pre-ring format.
	Epoch uint64
	// Origin identifies the sending member (its partner listen address)
	// on ring data-plane frames, so the receiver files backups into the
	// per-origin hold and answers RCT fetches with exactly that origin's
	// pages. Empty means the pair-mode default hold.
	Origin string
	// Members carries the ring member list on MsgMembership frames.
	Members []string
}

// hasExt reports whether the message carries trailing-extension fields.
// Messages without them encode byte-identically to the pre-extension
// format, so mixed-version pairs interoperate.
func (m *Message) hasExt() bool { return len(m.Streams) > 0 || m.Pressure != 0 || m.hasExt2() }

// hasExt2 reports whether the ring extension (epoch, origin, members) is
// present. It can only appear after the first extension, so a frame that
// carries it also encodes the stream/pressure block.
func (m *Message) hasExt2() bool { return m.Epoch != 0 || m.Origin != "" || len(m.Members) > 0 }

// extLen is the encoded size of the trailing extensions (0 when absent).
func (m *Message) extLen() int {
	if !m.hasExt() {
		return 0
	}
	n := 4 + len(m.Streams) + 8
	if m.hasExt2() {
		n += 8 + 2 + len(m.Origin) + 2
		for _, mem := range m.Members {
			n += 2 + len(mem)
		}
	}
	return n
}

// appendExt appends the trailing extensions: a stream-tag count and bytes
// (parallel to LPNs) followed by the sender's GC pressure, then — on ring
// frames — the ownership epoch, origin ID, and member list.
func (m *Message) appendExt(buf []byte) []byte {
	if !m.hasExt() {
		return buf
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Streams)))
	for _, s := range m.Streams {
		buf = append(buf, byte(s))
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Pressure))
	if !m.hasExt2() {
		return buf
	}
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Origin)))
	buf = append(buf, m.Origin...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Members)))
	for _, mem := range m.Members {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(mem)))
		buf = append(buf, mem...)
	}
	return buf
}

// MaxFrameBytes bounds a single frame (16 MiB of payload covers thousands
// of 4KB pages per forward).
const MaxFrameBytes = 16 << 20

// Encoding errors.
var (
	ErrFrameTooLarge = errors.New("cluster: frame exceeds MaxFrameBytes")
	ErrBadFrame      = errors.New("cluster: malformed frame")
)

// Marshal encodes the message body (without the outer length prefix).
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Err) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: error string too long", ErrBadFrame)
	}
	if len(m.Origin) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: origin ID too long", ErrBadFrame)
	}
	if len(m.Members) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: member list too long", ErrBadFrame)
	}
	for _, mem := range m.Members {
		if len(mem) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: member ID too long", ErrBadFrame)
		}
	}
	size := 1 + 8 + 4 + 8*len(m.LPNs) + 4 + 8*len(m.Stamps) + 4 + len(m.Data) + 8*4 + 2 + len(m.Err) + m.extLen()
	if size > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.LPNs)))
	for _, lpn := range m.LPNs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(lpn))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Stamps)))
	for _, st := range m.Stamps {
		buf = binary.BigEndian.AppendUint64(buf, st)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Data)))
	buf = append(buf, m.Data...)
	for _, f := range [4]float64{m.Info.WriteFrac, m.Info.Mem, m.Info.CPU, m.Info.Net} {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Err)))
	buf = append(buf, m.Err...)
	buf = m.appendExt(buf)
	return buf, nil
}

// Unmarshal decodes a message body produced by Marshal.
func (m *Message) Unmarshal(buf []byte) error {
	r := reader{buf: buf}
	t, err := r.u8()
	if err != nil {
		return err
	}
	m.Type = MsgType(t)
	if m.Seq, err = r.u64(); err != nil {
		return err
	}
	nl, err := r.u32()
	if err != nil {
		return err
	}
	if int(nl)*8 > len(r.buf)-r.off {
		return fmt.Errorf("%w: lpn count %d exceeds frame", ErrBadFrame, nl)
	}
	m.LPNs = make([]int64, nl)
	for i := range m.LPNs {
		v, err := r.u64()
		if err != nil {
			return err
		}
		m.LPNs[i] = int64(v)
	}
	ns, err := r.u32()
	if err != nil {
		return err
	}
	if int(ns)*8 > len(r.buf)-r.off {
		return fmt.Errorf("%w: stamp count %d exceeds frame", ErrBadFrame, ns)
	}
	m.Stamps = make([]uint64, ns)
	for i := range m.Stamps {
		if m.Stamps[i], err = r.u64(); err != nil {
			return err
		}
	}
	nd, err := r.u32()
	if err != nil {
		return err
	}
	if m.Data, err = r.bytes(int(nd)); err != nil {
		return err
	}
	var fs [4]float64
	for i := range fs {
		v, err := r.u64()
		if err != nil {
			return err
		}
		fs[i] = math.Float64frombits(v)
	}
	m.Info = Info{WriteFrac: fs[0], Mem: fs[1], CPU: fs[2], Net: fs[3]}
	ne, err := r.u16()
	if err != nil {
		return err
	}
	eb, err := r.bytes(int(ne))
	if err != nil {
		return err
	}
	m.Err = string(eb)
	// Optional trailing extension (stream tags + GC pressure). A body
	// ending here came from a pre-extension sender: leave the fields at
	// their zero values.
	m.Streams, m.Pressure = nil, 0
	if r.off == len(r.buf) {
		return nil
	}
	nt, err := r.u32()
	if err != nil {
		return err
	}
	if int(nt) > len(r.buf)-r.off {
		return fmt.Errorf("%w: stream-tag count %d exceeds frame", ErrBadFrame, nt)
	}
	if nt > 0 {
		m.Streams = make([]stream.Stream, nt)
		for i := range m.Streams {
			b, err := r.u8()
			if err != nil {
				return err
			}
			// Unknown tags from newer senders degrade to the default
			// stream instead of failing the frame.
			m.Streams[i] = stream.FromByte(b)
		}
	}
	pv, err := r.u64()
	if err != nil {
		return err
	}
	m.Pressure = math.Float64frombits(pv)
	// Optional second extension (ownership epoch, origin, members). A
	// body ending here came from a pre-ring sender: leave the fields at
	// their zero values.
	m.Epoch, m.Origin, m.Members = 0, "", nil
	if r.off == len(r.buf) {
		return nil
	}
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	no, err := r.u16()
	if err != nil {
		return err
	}
	ob, err := r.bytes(int(no))
	if err != nil {
		return err
	}
	m.Origin = string(ob)
	nm, err := r.u16()
	if err != nil {
		return err
	}
	if int(nm)*2 > len(r.buf)-r.off {
		return fmt.Errorf("%w: member count %d exceeds frame", ErrBadFrame, nm)
	}
	if nm > 0 {
		m.Members = make([]string, nm)
		for i := range m.Members {
			ml, err := r.u16()
			if err != nil {
				return err
			}
			mb, err := r.bytes(int(ml))
			if err != nil {
				return err
			}
			m.Members[i] = string(mb)
		}
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.buf)-r.off)
	}
	return nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if r.off+n > len(r.buf) {
		return fmt.Errorf("%w: truncated at offset %d", ErrBadFrame, r.off)
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrBadFrame
	}
	if err := r.need(n); err != nil {
		return nil, err
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}

// WriteFrame writes a length-prefixed message to w.
func WriteFrame(w io.Writer, m *Message) error {
	body, err := m.Marshal()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one message from r, accepting both wire formats: the
// v1 length-prefixed frame and the v2 checksummed frame (see framing.go).
// The first byte disambiguates — a valid v1 length for a ≤16 MiB frame
// starts with 0x00 or 0x01, so the 0xFC magic can never be confused for
// one.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] == FrameMagicV2 {
		return readFrameV2(r, hdr)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Message
	if err := m.Unmarshal(body); err != nil {
		return nil, err
	}
	return &m, nil
}
