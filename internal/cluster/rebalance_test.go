package cluster

import (
	"testing"
	"time"
)

func TestLiveRebalanceRespondsToWriteIntensity(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()

	// Make b write-intensive (its window reports a high write fraction).
	for i := int64(0); i < 50; i++ {
		if err := b.Write(i, page(1, ps)); err != nil {
			t.Fatal(err)
		}
	}
	thetaHot, err := a.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if thetaHot <= 0 {
		t.Fatalf("theta = %v with a write-intensive partner", thetaHot)
	}
	if a.Stats().Rebalances != 1 {
		t.Fatalf("Rebalances = %d", a.Stats().Rebalances)
	}
	// Remote store grew toward θ·total.
	total := a.cfg.BufferPages + a.cfg.RemotePages
	wantRemote := int(thetaHot * float64(total))
	if a.Remote().Capacity() != wantRemote {
		t.Fatalf("remote capacity = %d, want %d", a.Remote().Capacity(), wantRemote)
	}
	if a.Buffer().Capacity() != total-wantRemote {
		t.Fatalf("local capacity = %d", a.Buffer().Capacity())
	}

	// Now b's window is read-only: θ must fall.
	for i := int64(0); i < 50; i++ {
		if _, err := b.Read(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	thetaCold, err := a.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if thetaCold >= thetaHot {
		t.Fatalf("theta did not fall for a read-intensive partner: %v -> %v", thetaHot, thetaCold)
	}
}

func TestLiveRebalanceNoPeer(t *testing.T) {
	n, err := NewLiveNode(LiveConfig{
		Name: "solo", ListenAddr: "127.0.0.1:0",
		BufferPages: 16, RemotePages: 16, SSD: liveSSD(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.RebalanceOnce(); err != errNoPeer {
		t.Fatalf("solo rebalance: %v", err)
	}
}

func TestLiveStartRebalanceLoop(t *testing.T) {
	a, b := livePair(t)
	ps := b.Device().PageSize()
	for i := int64(0); i < 20; i++ {
		if err := b.Write(i, page(2, ps)); err != nil {
			t.Fatal(err)
		}
	}
	a.StartRebalance(15 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && a.Stats().Rebalances == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Stats().Rebalances == 0 {
		t.Fatal("rebalance loop never ran")
	}
}

func TestLiveTrim(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()
	for i := int64(0); i < 8; i++ {
		if err := a.Write(i, page(byte(i), ps)); err != nil {
			t.Fatal(err)
		}
	}
	if b.RemoteLen() != 8 {
		t.Fatalf("backups = %d", b.RemoteLen())
	}
	persists0 := a.Stats().Persists
	if err := a.Trim(0, 8); err != nil {
		t.Fatal(err)
	}
	if a.Buffer().Len() != 0 {
		t.Error("pages still buffered after trim")
	}
	// Trimmed data never became durable.
	if a.Stats().Persists != persists0 {
		t.Error("trim persisted data")
	}
	// The discard notice is async; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && b.RemoteLen() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if b.RemoteLen() != 0 {
		t.Error("backups not discarded after trim")
	}
	// Reads of trimmed pages return zeros.
	got, err := a.Read(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bb := range got {
		if bb != 0 {
			t.Fatal("trimmed page not zero")
		}
	}
}
