package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"flashcoop/internal/faultnet"
)

// TestStaleBackupNotRecovered reproduces the heartbeat-false-positive
// rollback scenario end-to-end over an injected transport:
//
//  1. A forwards a backup of page P (v1) to B.
//  2. An asymmetric partition cuts A→B; A declares B dead and writes P
//     again (v2) through degraded mode, making v2 durable locally.
//  3. The partition heals. B still holds the v1 backup — from its side
//     nothing ever failed.
//  4. A runs RecoverFromPeer (as a restarted node would). Without the
//     write-stamp guard the stale v1 backup would overwrite durable v2,
//     rolling back an acknowledged write.
func TestStaleBackupNotRecovered(t *testing.T) {
	netA := faultnet.New(7)

	b, err := NewLiveNode(LiveConfig{
		Name: "B", ListenAddr: "127.0.0.1:0",
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		CallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a, err := NewLiveNode(LiveConfig{
		Name: "A", ListenAddr: "127.0.0.1:0", PeerAddr: b.Addr(),
		BufferPages: 32, RemotePages: 32, SSD: liveSSD(),
		DataDir:     t.TempDir(),
		CallTimeout: 300 * time.Millisecond,
		Dialer:      netA.Dial,
		Listener:    netA.Listen,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}

	ps := a.Device().PageSize()
	const lpn = 5
	v1, v2 := page(0x11, ps), page(0x22, ps)

	if err := a.Write(lpn, v1); err != nil {
		t.Fatal(err)
	}
	if !b.RemoteContains(lpn) {
		t.Fatal("backup of v1 did not reach B")
	}

	// Asymmetric partition: A cannot reach B; B is untouched.
	netA.SetPartitioned(true)
	if err := a.Write(lpn, v2); err != nil {
		t.Fatalf("degraded write should succeed locally: %v", err)
	}
	if a.PeerAlive() {
		t.Fatal("A should have declared B dead after the forward failed")
	}
	if got := a.DurableGet(lpn); !bytes.Equal(got, v2) {
		t.Fatal("degraded write-through did not persist v2")
	}

	// Heal, then run recovery like a freshly restarted node would.
	netA.SetPartitioned(false)
	reconnect := func() error {
		deadline := time.Now().Add(5 * time.Second)
		for {
			err := a.ConnectPeer()
			if err == nil {
				return nil
			}
			// The partition armed the redial backoff gate; wait it out.
			if !errors.Is(err, errDialBackoff) || time.Now().After(deadline) {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if err := reconnect(); err != nil {
		t.Fatal(err)
	}
	if err := a.RecoverFromPeer(); err != nil {
		t.Fatal(err)
	}

	if got := a.Stats().StaleRecoverySkips; got < 1 {
		t.Fatalf("StaleRecoverySkips = %d, want >= 1", got)
	}
	got, err := a.Read(lpn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Fatalf("acknowledged v2 rolled back to a stale peer backup (got %x...)", got[0])
	}
}
