package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"flashcoop/internal/faultfs"
)

// ErrSyncPoisoned is returned by every put/flush on a store section whose
// fsync has failed once. Per fsyncgate semantics, a failed fsync means the
// kernel may already have DROPPED the dirty pages — a retried fsync then
// "succeeds" while covering nothing, so retrying and pretending is the one
// unforgivable response. The section latches the failure permanently:
// writes fail fast, the lifecycle is driven to Degraded, and only a
// process restart (which rebuilds state from the medium and its peers)
// clears it.
var ErrSyncPoisoned = errors.New("cluster: store section poisoned by failed fsync")

// pageStore is the durable medium behind a live node: what survives once a
// page has been flushed from the cooperative buffer. Each page carries its
// write stamp (the node's monotonic per-page version) so that crash
// recovery can tell a stale peer backup from newer durable data.
//
// Implementations are safe for concurrent use: the sharded live node
// persists from several shard sections at once, so stores synchronize
// internally instead of leaning on a caller's lock. get returns a copy
// that the caller owns — mutating a read result can never corrupt the
// store.
type pageStore interface {
	// get returns a copy of the stored payload for lpn, or nil when absent
	// (or, for checksummed stores, when the record fails verification).
	get(lpn int64) []byte
	// getStamp returns the stored write stamp for lpn.
	getStamp(lpn int64) (uint64, bool)
	// put stores the payload (exactly one page) with its write stamp.
	put(lpn int64, data []byte, stamp uint64) error
	// remove deletes the page (TRIM).
	remove(lpn int64) error
	// pages reports how many pages are stored.
	pages() int
	// maxStamp reports the largest stamp currently stored; a restarted
	// node resumes its stamp counter from here.
	maxStamp() uint64
	// flush makes every preceding put durable (fsync in sync mode). puts
	// are batched between flushes so an evictor draining a whole flush
	// unit pays one sync, not one per page.
	flush() error
	close() error
}

// sectionedStore is the optional per-section sync extension: flushOf makes
// only the section holding lpn durable. The sharded store implements it so
// a persist batch (always within one shard) syncs one file, not all.
type sectionedStore interface {
	flushOf(lpn int64) error
}

// fsBarrier is the optional whole-filesystem durability extension. All of
// one node's section files live in a single DataDir, so on hosts with
// syncfs(2) the group-commit coordinator can settle a pass spanning many
// sections with ONE filesystem-wide barrier instead of one fsync per
// section file — the per-pass syscall count stops scaling with the shard
// count. The barrier is opt-in (LiveConfig.SyncBarrier): syncfs flushes
// EVERYTHING dirty on the filesystem, so it only wins when the DataDir
// sits on its own filesystem; on a shared one it inherits every other
// tenant's writeback as tail latency. The protocol is: read each pending
// section's syncTarget, issue
// syncFS through any one of them, then markSynced the captured targets.
// Any put racing the barrier lands in a later generation and stays
// pending, exactly like the per-file generation check in fileStore.flush.
type fsBarrier interface {
	// barrierReady reports whether the section can take part in a
	// filesystem barrier (sync mode on, platform has syncfs).
	barrierReady() bool
	// syncTarget returns the put generation a barrier must cover for this
	// section's pending puts; ok is false when it is already durable.
	syncTarget() (target uint64, ok bool)
	// syncFS issues one durability barrier over the whole filesystem
	// holding the section, covering every sibling section on it too.
	syncFS() error
	// markSynced records that an external barrier covered generation
	// target, so later flushes of already-covered puts become no-ops.
	markSynced(target uint64)
}

// runPutter is the optional batched-put extension: store a run of
// consecutive-LPN pages in one shot, letting file-backed stores coalesce
// records that land in adjacent slots into single pwrites. The slices run
// parallel; semantics are identical to calling put page by page.
type runPutter interface {
	putRun(lpns []int64, data [][]byte, stamps []uint64) error
}

// storeVerifier is the optional integrity extension: verify re-reads and
// checksums lpn's record without mutating any counters, reporting whether
// the local durable copy is intact. Recovery and repair use it to decide
// whether a stamp comparison against a peer copy can be trusted.
type storeVerifier interface {
	verify(lpn int64) bool
}

// corruptTracker is the optional corruption-accounting extension.
type corruptTracker interface {
	// takeCorrupt drains the LPNs of records that failed verification at
	// load time (their lpn self-description was still parseable) — repair
	// candidates for the ring.
	takeCorrupt() []int64
	// corruptCount reports how many corrupt records have been detected
	// over the store's lifetime (load + runtime).
	corruptCount() int64
}

// poisonedSection is the optional fsync-poison extension (see
// ErrSyncPoisoned).
type poisonedSection interface {
	storePoisoned() bool
}

// memStore is the default in-memory medium (contents die with the process,
// like the simulator's SSD).
type memStore struct {
	mu  sync.Mutex
	m   map[int64]memPage
	max uint64
}

type memPage struct {
	data  []byte
	stamp uint64
}

func newMemStore() *memStore { return &memStore{m: make(map[int64]memPage)} }

func (s *memStore) get(lpn int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[lpn]
	if !ok {
		return nil
	}
	cp := make([]byte, len(p.data))
	copy(cp, p.data)
	return cp
}

func (s *memStore) getStamp(lpn int64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[lpn]
	return p.stamp, ok
}

func (s *memStore) put(lpn int64, data []byte, stamp uint64) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[lpn] = memPage{data: cp, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	return nil
}

func (s *memStore) remove(lpn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, lpn)
	return nil
}

func (s *memStore) pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *memStore) maxStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *memStore) flush() error { return nil }

func (s *memStore) close() error { return nil }

// On-disk format (v1). The file opens with a 16-byte header:
//
//	[4B magic "FCPS"][1B version][3B zero][4B BE page size][4B zero]
//
// followed by fixed-size slots of a 24-byte record header plus the page
// payload:
//
//	[4B BE CRC32-C][1B flags][3B zero][8B BE lpn][8B BE stamp][payload]
//
// The CRC (Castagnoli, same table the v2 wire frames use) covers bytes
// 4..24+pageSize of a live record and bytes 4..24 of a free one (flags
// bit 0 set, lpn = -1, stamp = 0), so a free slot's stale payload bytes
// never count against it. The lpn in the record is self-description: a
// read that returns a VALID record for the WRONG lpn (a misdirected
// write) fails verification just like a torn one. Legacy v0 files
// ([8B lpn][8B stamp][payload] per record, no file header, no checksums)
// are migrated to v1 once at open via a write-to-temp + rename.
var storeMagic = [4]byte{'F', 'C', 'P', 'S'}

const (
	storeVersion    = 1
	storeHeaderSize = 16
	slotHeaderSize  = 24
	slotFlagFree    = 1 // flags bit 0: record is a free slot
	slotHeaderV0    = 16
)

// freeSlotMarker marks a deleted record (the lpn field of a free slot).
const freeSlotMarker = int64(-1)

// encodeSlot fills rec (slotHeaderSize+len(payload) bytes) with a live v1
// record.
func encodeSlot(rec []byte, lpn int64, stamp uint64, payload []byte) {
	rec[4], rec[5], rec[6], rec[7] = 0, 0, 0, 0
	binary.BigEndian.PutUint64(rec[8:16], uint64(lpn))
	binary.BigEndian.PutUint64(rec[16:24], stamp)
	copy(rec[slotHeaderSize:], payload)
	binary.BigEndian.PutUint32(rec[:4], crc32.Checksum(rec[4:], castagnoli))
}

// encodeFreeSlot fills hdr (at least slotHeaderSize bytes) with a free v1
// record header; payload bytes beyond it are not covered by the CRC.
func encodeFreeSlot(hdr []byte) {
	hdr[4], hdr[5], hdr[6], hdr[7] = slotFlagFree, 0, 0, 0
	marker := freeSlotMarker // via a variable: uint64(-1) is a constant overflow
	binary.BigEndian.PutUint64(hdr[8:16], uint64(marker))
	binary.BigEndian.PutUint64(hdr[16:24], 0)
	binary.BigEndian.PutUint32(hdr[:4], crc32.Checksum(hdr[4:slotHeaderSize], castagnoli))
}

// decodeSlot validates one v1 record carrying a pageSize-byte payload.
// ok=false means the record is torn, bit-rotted, or malformed; free
// reports a (valid) free slot.
func decodeSlot(rec []byte, pageSize int) (lpn int64, stamp uint64, free, ok bool) {
	if len(rec) != slotHeaderSize+pageSize {
		return 0, 0, false, false
	}
	if rec[4]&^byte(slotFlagFree) != 0 || rec[5]|rec[6]|rec[7] != 0 {
		return 0, 0, false, false
	}
	crc := binary.BigEndian.Uint32(rec[:4])
	free = rec[4]&slotFlagFree != 0
	cover := rec[4:]
	if free {
		cover = rec[4:slotHeaderSize]
	}
	if crc32.Checksum(cover, castagnoli) != crc {
		return 0, 0, false, false
	}
	lpn = int64(binary.BigEndian.Uint64(rec[8:16]))
	stamp = binary.BigEndian.Uint64(rec[16:24])
	if free {
		if lpn != freeSlotMarker || stamp != 0 {
			return 0, 0, true, false
		}
		return lpn, stamp, true, true
	}
	if lpn < 0 {
		return 0, 0, false, false
	}
	return lpn, stamp, false, true
}

// fileStore persists pages in a single slotted file so a restarted daemon
// keeps its data (see the v1 format comment above). The index is rebuilt
// by scanning — and checksumming — every record at open; corrupt records
// are freed, counted, and their self-described LPNs queued as repair
// candidates.
type fileStore struct {
	mu       sync.Mutex
	f        faultfs.File
	fsys     faultfs.FS
	path     string
	pageSize int
	index    map[int64]fileSlot // lpn -> slot + cached stamp
	free     []int64            // reusable slots
	slots    int64              // total slots in the file
	max      uint64             // largest stamp seen
	sync     bool               // fsync on flush
	barrier  bool               // advertise the whole-filesystem barrier (see fsBarrier)
	puts     uint64             // write generation: bumped by every put
	suspects []int64            // load-time corrupt records with a parseable lpn

	// corrupt counts records that failed verification (load + runtime,
	// each record at most once until repaired).
	corrupt atomic.Int64
	// onCorrupt, when set, is invoked (outside mu) with the lpn of each
	// newly detected corrupt record — the node hooks this to queue ring
	// repair. Set before the node's goroutines start, like barrier.
	onCorrupt func(lpn int64)

	// Fsync-poison latch (see ErrSyncPoisoned): once an fsync fails, the
	// section permanently fails puts and flushes. perr is stored before
	// poisonFlag flips so any reader that observes the flag also observes
	// the error. onPoison fires exactly once, outside all store locks.
	poisonFlag atomic.Bool
	perr       atomic.Value // error
	poisonOnce sync.Once
	onPoison   func(err error)

	// syncMu serializes fsync, deliberately apart from mu: holding the
	// record lock across f.Sync would stall every put (and get) behind the
	// sync, re-serializing exactly the put/fsync overlap the group-commit
	// pipeline depends on. synced is the put generation the last completed
	// sync covered; a flush whose target generation is already covered
	// returns without another fsync — concurrent flushes group-commit at
	// the file level. It is atomic (advanced monotonically) rather than
	// syncMu-guarded so the coordinator's filesystem barrier can publish
	// coverage without queueing behind an in-flight per-file fsync.
	syncMu sync.Mutex
	synced atomic.Uint64
}

// advanceSynced raises gen to at least v, never lowering it: coverage from
// a barrier and from a per-file fsync may land in either order.
func advanceSynced(gen *atomic.Uint64, v uint64) {
	for {
		cur := gen.Load()
		if v <= cur || gen.CompareAndSwap(cur, v) {
			return
		}
	}
}

type fileSlot struct {
	slot  int64
	stamp uint64
	bad   bool // record failed verification; awaiting repair
}

const fileStoreName = "pagestore.dat"

// storeDatasync is datasync through the faultfs layer: real files keep the
// fdatasync fast path, injected ones go through their Sync (where the
// fault schedule lives).
func storeDatasync(f faultfs.File) error {
	if of, ok := f.(*faultfs.OSFile); ok {
		return datasync(of.File)
	}
	return f.Sync()
}

// newFileStore opens (creating if needed) the page store in dir.
func newFileStore(dir string, pageSize int, syncWrites bool) (*fileStore, error) {
	return newFileStoreAt(dir, fileStoreName, pageSize, syncWrites)
}

// newFileStoreAt opens a page store under an explicit file name; the
// sharded store gives each shard its own file so per-shard evictors fsync
// independent streams instead of convoying on one inode.
func newFileStoreAt(dir, name string, pageSize int, syncWrites bool) (*fileStore, error) {
	return newFileStoreFS(faultfs.OS(), dir, name, pageSize, syncWrites)
}

// newFileStoreFS opens a page store through an explicit filesystem layer —
// faultfs.OS() in production, a faultfs.Injector under chaos.
func newFileStoreFS(fsys faultfs.FS, dir, name string, pageSize int, syncWrites bool) (*fileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: pagestore dir: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: pagestore: %w", err)
	}
	s := &fileStore{
		f:        f,
		fsys:     fsys,
		path:     path,
		pageSize: pageSize,
		index:    make(map[int64]fileSlot),
		sync:     syncWrites,
	}
	if err := s.load(); err != nil {
		s.f.Close()
		return nil, err
	}
	return s, nil
}

func (s *fileStore) recordSize() int64 { return int64(slotHeaderSize + s.pageSize) }

func (s *fileStore) slotOff(slot int64) int64 { return storeHeaderSize + slot*s.recordSize() }

func (s *fileStore) writeHeader() error {
	var hdr [storeHeaderSize]byte
	copy(hdr[:4], storeMagic[:])
	hdr[4] = storeVersion
	binary.BigEndian.PutUint32(hdr[8:12], uint32(s.pageSize))
	if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("cluster: pagestore header: %w", err)
	}
	return nil
}

// load rebuilds the index from the slotted file, migrating legacy v0
// files to the checksummed v1 format first.
func (s *fileStore) load() error {
	size, err := s.f.Size()
	if err != nil {
		return fmt.Errorf("cluster: pagestore: %w", err)
	}
	if size == 0 {
		return s.writeHeader()
	}
	var hdr [storeHeaderSize]byte
	if size >= storeHeaderSize {
		if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
			return fmt.Errorf("cluster: pagestore load: %w", err)
		}
	}
	if size >= storeHeaderSize && bytes.Equal(hdr[:4], storeMagic[:]) {
		if hdr[4] != storeVersion {
			return fmt.Errorf("cluster: pagestore %s: unsupported format version %d", s.path, hdr[4])
		}
		if ps := int(binary.BigEndian.Uint32(hdr[8:12])); ps != s.pageSize {
			return fmt.Errorf("cluster: pagestore %s: page size %d on disk, opened with %d (page size or format mismatch?)",
				s.path, ps, s.pageSize)
		}
		return s.loadV1(size)
	}
	if err := s.migrateV0(size); err != nil {
		return err
	}
	size, err = s.f.Size()
	if err != nil {
		return fmt.Errorf("cluster: pagestore: %w", err)
	}
	return s.loadV1(size)
}

// loadV1 scans and verifies every record. Corrupt records are counted,
// their slot freed (a clean free header is written over them so later
// scrub passes stay quiet), and their self-described lpn — when it parses
// — queued as a repair suspect for the ring. A trailing partial record
// (torn append at crash) is normalized into a free slot the same way.
func (s *fileStore) loadV1(size int64) error {
	rs := s.recordSize()
	body := size - storeHeaderSize
	s.slots = body / rs
	tail := body % rs
	rec := make([]byte, rs)
	for slot := int64(0); slot < s.slots; slot++ {
		if _, err := s.f.ReadAt(rec, s.slotOff(slot)); err != nil {
			return fmt.Errorf("cluster: pagestore load: %w", err)
		}
		lpn, stamp, free, ok := decodeSlot(rec, s.pageSize)
		switch {
		case ok && free:
			s.free = append(s.free, slot)
		case ok:
			s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
			if stamp > s.max {
				s.max = stamp
			}
		default:
			s.corrupt.Add(1)
			if raw := int64(binary.BigEndian.Uint64(rec[8:16])); raw >= 0 {
				s.suspects = append(s.suspects, raw)
			}
			s.freeSlotOnDisk(slot)
			s.free = append(s.free, slot)
		}
	}
	if tail > 0 {
		s.corrupt.Add(1)
		s.freeSlotOnDisk(s.slots)
		s.free = append(s.free, s.slots)
		s.slots++
	}
	return nil
}

// freeSlotOnDisk best-effort overwrites slot with a full-size clean free
// record, so a once-detected corrupt slot is not re-detected every pass.
func (s *fileStore) freeSlotOnDisk(slot int64) {
	rec := make([]byte, s.recordSize())
	encodeFreeSlot(rec)
	s.f.WriteAt(rec, s.slotOff(slot)) //nolint:errcheck // best effort
}

// migrateV0 rewrites a legacy (un-checksummed) file as v1 via a temp file
// and an atomic rename; free v0 slots are compacted away. A crash before
// the rename leaves the original untouched; stale temp files are removed
// at the next open.
func (s *fileStore) migrateV0(size int64) error {
	rsV0 := int64(slotHeaderV0 + s.pageSize)
	if size%rsV0 != 0 {
		return fmt.Errorf("cluster: pagestore size %d not a multiple of record size %d (page size or format mismatch?)",
			size, rsV0)
	}
	tmp := s.path + ".migrate"
	s.fsys.Remove(tmp) //nolint:errcheck // stale leftovers only
	nf, err := s.fsys.OpenFile(tmp)
	if err != nil {
		return fmt.Errorf("cluster: pagestore migrate: %w", err)
	}
	fail := func(err error) error {
		nf.Close()
		s.fsys.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("cluster: pagestore migrate: %w", err)
	}
	var hdr [storeHeaderSize]byte
	copy(hdr[:4], storeMagic[:])
	hdr[4] = storeVersion
	binary.BigEndian.PutUint32(hdr[8:12], uint32(s.pageSize))
	if _, err := nf.WriteAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	rs := s.recordSize()
	old := make([]byte, rsV0)
	rec := make([]byte, rs)
	out := int64(0)
	for slot := int64(0); slot < size/rsV0; slot++ {
		if _, err := s.f.ReadAt(old, slot*rsV0); err != nil {
			return fail(err)
		}
		lpn := int64(binary.BigEndian.Uint64(old[:8]))
		if lpn == freeSlotMarker {
			continue
		}
		if lpn < 0 {
			return fail(fmt.Errorf("corrupt lpn %d at v0 slot %d", lpn, slot))
		}
		encodeSlot(rec, lpn, binary.BigEndian.Uint64(old[8:16]), old[slotHeaderV0:])
		if _, err := nf.WriteAt(rec, storeHeaderSize+out*rs); err != nil {
			return fail(err)
		}
		out++
	}
	if err := nf.Sync(); err != nil {
		return fail(err)
	}
	if err := nf.Close(); err != nil {
		return fail(err)
	}
	s.f.Close()
	if err := s.fsys.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("cluster: pagestore migrate rename: %w", err)
	}
	f, err := s.fsys.OpenFile(s.path)
	if err != nil {
		return fmt.Errorf("cluster: pagestore migrate reopen: %w", err)
	}
	s.f = f
	return nil
}

// get returns the verified payload for lpn, or nil. A record that fails
// its checksum or does not self-describe as (lpn, indexed stamp) — a
// torn, misdirected, or bit-rotted write — is reported once through
// onCorrupt and KEPT in the index: its cached stamp still ranks repair
// candidates, and a later put (repair or fresh write) heals the slot.
//
// The pread runs with s.mu RELEASED: a read miss stalled in disk latency
// must not serialize every put to the section behind it (the off-lock
// read path depends on this store-level concurrency too). Dropping the
// lock means a concurrent put or remove can rewrite or free the slot
// mid-read; the verdict is therefore re-validated against the index
// afterwards, and a snapshot that changed mid-read retries instead of
// being misreported as corruption. The retry terminates because each
// iteration means a concurrent writer advanced the entry.
func (s *fileStore) get(lpn int64) []byte {
	for {
		s.mu.Lock()
		fs, ok := s.index[lpn]
		f := s.f
		s.mu.Unlock()
		if !ok {
			return nil
		}
		rec := make([]byte, s.recordSize())
		_, rerr := f.ReadAt(rec, s.slotOff(fs.slot))
		var glpn int64
		var gstamp uint64
		var free, okRec bool
		if rerr == nil {
			glpn, gstamp, free, okRec = decodeSlot(rec, s.pageSize)
		}
		var report func(int64)
		s.mu.Lock()
		cur, ok := s.index[lpn]
		if !ok {
			s.mu.Unlock()
			return nil // removed mid-read; the torn view is meaningless
		}
		if cur.slot != fs.slot || cur.stamp != fs.stamp {
			s.mu.Unlock()
			continue // rewritten mid-read; judge the new record instead
		}
		switch {
		case rerr != nil:
			// Unreadable (I/O error): possibly transient, so no bad-mark,
			// but still a repair candidate.
			report = s.onCorrupt
		case !okRec || free || glpn != lpn || gstamp != cur.stamp:
			if !cur.bad {
				cur.bad = true
				s.index[lpn] = cur
				s.corrupt.Add(1)
				report = s.onCorrupt
			}
		default:
			if cur.bad {
				cur.bad = false
				s.index[lpn] = cur
			}
			s.mu.Unlock()
			return rec[slotHeaderSize:]
		}
		s.mu.Unlock()
		if report != nil {
			report(lpn)
		}
		return nil
	}
}

// verify reports whether lpn's durable record is present and intact,
// without touching corruption counters.
func (s *fileStore) verify(lpn int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return false
	}
	rec := make([]byte, s.recordSize())
	if _, err := s.f.ReadAt(rec, s.slotOff(fs.slot)); err != nil {
		return false
	}
	glpn, gstamp, free, okRec := decodeSlot(rec, s.pageSize)
	return okRec && !free && glpn == lpn && gstamp == fs.stamp
}

func (s *fileStore) takeCorrupt() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.suspects
	s.suspects = nil
	return out
}

func (s *fileStore) corruptCount() int64 { return s.corrupt.Load() }

func (s *fileStore) storePoisoned() bool { return s.poisonFlag.Load() }

// poison latches a permanent sync failure (see ErrSyncPoisoned) and
// returns the latched error.
func (s *fileStore) poison(cause error) error {
	s.poisonOnce.Do(func() {
		err := fmt.Errorf("%w: %s: %v", ErrSyncPoisoned, s.path, cause)
		s.perr.Store(err)
		s.poisonFlag.Store(true)
		if s.onPoison != nil {
			s.onPoison(err)
		}
	})
	return s.poisonErr()
}

func (s *fileStore) poisonErr() error {
	if e, _ := s.perr.Load().(error); e != nil {
		return e
	}
	return ErrSyncPoisoned
}

// scrubRange verifies up to maxSlots records starting at slot start (one
// lock hold — keep batches modest). It returns the next cursor (0 after
// wrapping), how many slots were checked, and the LPNs of every indexed
// record currently failing verification; newly detected ones are also
// counted and reported through onCorrupt. Unindexed slots holding invalid
// bytes (crash remnants on freed slots) are silently rewritten as clean
// free records.
func (s *fileStore) scrubRange(start int64, maxSlots int) (next int64, checked int, bad []int64) {
	s.mu.Lock()
	total := s.slots
	if start >= total {
		start = 0
	}
	if total == 0 {
		s.mu.Unlock()
		return 0, 0, nil
	}
	end := start + int64(maxSlots)
	if end > total {
		end = total
	}
	owner := make(map[int64]int64, maxSlots) // slot -> lpn, batch only
	for lpn, fs := range s.index {
		if fs.slot >= start && fs.slot < end {
			owner[fs.slot] = lpn
		}
	}
	var newly []int64
	rec := make([]byte, s.recordSize())
	for slot := start; slot < end; slot++ {
		checked++
		lpn, owned := owner[slot]
		_, rerr := s.f.ReadAt(rec, s.slotOff(slot))
		var glpn int64
		var gstamp uint64
		var free, okRec bool
		if rerr == nil {
			glpn, gstamp, free, okRec = decodeSlot(rec, s.pageSize)
		}
		if !owned {
			if rerr == nil && !(okRec && free) {
				s.freeSlotOnDisk(slot)
			}
			continue
		}
		fs := s.index[lpn]
		if rerr == nil && okRec && !free && glpn == lpn && gstamp == fs.stamp {
			if fs.bad {
				fs.bad = false
				s.index[lpn] = fs
			}
			continue
		}
		if !fs.bad {
			fs.bad = true
			s.index[lpn] = fs
			s.corrupt.Add(1)
			newly = append(newly, lpn)
		}
		bad = append(bad, lpn)
	}
	next = end
	if next >= total {
		next = 0
	}
	cb := s.onCorrupt
	s.mu.Unlock()
	if cb != nil {
		for _, lpn := range newly {
			cb(lpn)
		}
	}
	return next, checked, bad
}

func (s *fileStore) getStamp(lpn int64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	return fs.stamp, ok
}

func (s *fileStore) put(lpn int64, data []byte, stamp uint64) error {
	if s.poisonFlag.Load() {
		return s.poisonErr()
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("cluster: pagestore put of %d bytes, want %d", len(data), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var slot int64
	if fs, ok := s.index[lpn]; ok {
		slot = fs.slot
	} else if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.slots
		s.slots++
	}
	rec := make([]byte, s.recordSize())
	encodeSlot(rec, lpn, stamp, data)
	if _, err := s.f.WriteAt(rec, s.slotOff(slot)); err != nil {
		return fmt.Errorf("cluster: pagestore write: %w", err)
	}
	s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	s.puts++
	return nil
}

// runBufPool recycles the combined-record buffers putRun assembles, so a
// steady eviction stream doesn't allocate one per persist batch.
var runBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// putRun stores a run of consecutive-LPN pages. Records whose slots come
// out adjacent — the common case: a block's pages were first written
// together, so they were appended together — are combined into one
// WriteAt, halving (ppb=2) or better the pwrite syscalls per persist
// batch versus per-page put.
func (s *fileStore) putRun(lpns []int64, data [][]byte, stamps []uint64) error {
	if s.poisonFlag.Load() {
		return s.poisonErr()
	}
	for _, d := range data {
		if len(d) != s.pageSize {
			return fmt.Errorf("cluster: pagestore put of %d bytes, want %d", len(d), s.pageSize)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.recordSize()
	slots := make([]int64, len(lpns))
	for i, lpn := range lpns {
		if fs, ok := s.index[lpn]; ok {
			slots[i] = fs.slot
		} else if n := len(s.free); n > 0 {
			slots[i] = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			slots[i] = s.slots
			s.slots++
		}
	}
	bufp := runBufPool.Get().(*[]byte)
	defer runBufPool.Put(bufp)
	for i := 0; i < len(lpns); {
		j := i + 1
		for j < len(lpns) && slots[j] == slots[j-1]+1 {
			j++
		}
		need := int(rs) * (j - i)
		buf := (*bufp)[:0]
		if cap(buf) < need {
			buf = make([]byte, 0, need)
			*bufp = buf
		}
		buf = buf[:need]
		for k := i; k < j; k++ {
			encodeSlot(buf[(k-i)*int(rs):(k-i+1)*int(rs)], lpns[k], stamps[k], data[k])
		}
		if _, err := s.f.WriteAt(buf, s.slotOff(slots[i])); err != nil {
			return fmt.Errorf("cluster: pagestore write: %w", err)
		}
		for k := i; k < j; k++ {
			s.index[lpns[k]] = fileSlot{slot: slots[k], stamp: stamps[k]}
			if stamps[k] > s.max {
				s.max = stamps[k]
			}
		}
		i = j
	}
	s.puts++
	return nil
}

// flush makes every completed put durable. Generation tracking makes it
// both safe and cheap under concurrency: the target generation is read
// before taking syncMu, so a flush that finds its target already covered
// piggybacked on a sibling's completed fsync (syncMu means waiting for
// that fsync to finish, never just to start), and a put racing an fsync
// simply lands in a later generation for the next flush to cover. A
// failed fsync permanently poisons the section — see ErrSyncPoisoned.
func (s *fileStore) flush() error {
	if s.poisonFlag.Load() {
		return s.poisonErr()
	}
	if !s.sync {
		return nil
	}
	s.mu.Lock()
	target := s.puts
	s.mu.Unlock()
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced.Load() >= target {
		return nil
	}
	s.mu.Lock()
	covered := s.puts // everything written before this fsync starts
	s.mu.Unlock()
	if err := storeDatasync(s.f); err != nil {
		return s.poison(err)
	}
	advanceSynced(&s.synced, covered)
	return nil
}

// fsBarrier implementation: see the interface comment for the protocol.

// barrierReady additionally requires a real *os.File behind the faultfs
// layer: an injected file's Sync only covers its own overlay, so claiming
// filesystem-wide barrier coverage through it would mark sibling sections
// durable that are not.
func (s *fileStore) barrierReady() bool {
	if !(s.sync && s.barrier && hasSyncFS) || s.poisonFlag.Load() {
		return false
	}
	_, isOS := s.f.(*faultfs.OSFile)
	return isOS
}

func (s *fileStore) syncTarget() (uint64, bool) {
	if !s.sync || s.poisonFlag.Load() {
		return 0, false
	}
	s.mu.Lock()
	target := s.puts
	s.mu.Unlock()
	if s.synced.Load() >= target {
		return 0, false
	}
	return target, true
}

func (s *fileStore) syncFS() error {
	if s.poisonFlag.Load() {
		return s.poisonErr()
	}
	of, ok := s.f.(*faultfs.OSFile)
	if !ok {
		return s.f.Sync()
	}
	return syncFilesystem(of.File)
}

func (s *fileStore) markSynced(target uint64) { advanceSynced(&s.synced, target) }

func (s *fileStore) remove(lpn int64) error {
	if s.poisonFlag.Load() {
		return s.poisonErr()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return nil
	}
	var hdr [slotHeaderSize]byte
	encodeFreeSlot(hdr[:])
	if _, err := s.f.WriteAt(hdr[:], s.slotOff(fs.slot)); err != nil {
		return fmt.Errorf("cluster: pagestore remove: %w", err)
	}
	delete(s.index, lpn)
	s.free = append(s.free, fs.slot)
	return nil
}

func (s *fileStore) pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

func (s *fileStore) maxStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *fileStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisonFlag.Load() {
		// The section already failed durability; closing must not pretend
		// otherwise (and the final sync would only re-fail).
		s.f.Close()
		return s.poisonErr()
	}
	// fsync never legitimately returns io.EOF; any error here means the
	// final records may not have reached the medium, and it must surface
	// as a persist failure instead of being swallowed.
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// shardedStore stripes a pageStore across one sub-store per buffer shard,
// routed by the same block→shard function the buffer uses, so a shard's
// evictor only ever touches its own sub-store (and, with a fileStore
// backing, its own file descriptor and fsync stream). This is what keeps
// the durable medium from re-serializing the sharded write path.
type shardedStore struct {
	subs []pageStore
	ppb  int64
}

// newShardedMemStore builds an n-way striped in-memory store.
func newShardedMemStore(n, pagesPerBlock int) *shardedStore {
	s := &shardedStore{subs: make([]pageStore, n), ppb: int64(pagesPerBlock)}
	for i := range s.subs {
		s.subs[i] = newMemStore()
	}
	return s
}

// shardStoreName names shard i's backing file. Shard 0 keeps the legacy
// single-store name, so a 1-shard node reopens data written before
// sharding existed.
func shardStoreName(i int) string {
	if i == 0 {
		return fileStoreName
	}
	return fmt.Sprintf("pagestore-%d.dat", i)
}

// newShardedFileStore builds an n-way striped file store in dir over fsys.
// The shard count must be stable across restarts of the same DataDir:
// pages are routed to files by shard index, so reopening with a different
// count would look up pages in the wrong sub-store.
func newShardedFileStore(fsys faultfs.FS, dir string, pageSize int, syncWrites, barrier bool, n, pagesPerBlock int) (*shardedStore, error) {
	s := &shardedStore{subs: make([]pageStore, n), ppb: int64(pagesPerBlock)}
	for i := range s.subs {
		sub, err := newFileStoreFS(fsys, dir, shardStoreName(i), pageSize, syncWrites)
		if err != nil {
			for j := 0; j < i; j++ {
				s.subs[j].close()
			}
			return nil, err
		}
		sub.barrier = barrier
		s.subs[i] = sub
	}
	return s, nil
}

func (s *shardedStore) sub(lpn int64) pageStore {
	return s.subs[uint64(lpn/s.ppb)%uint64(len(s.subs))]
}

// fileSubs returns the file-backed sub-stores (nil entries elided); the
// scrubber and the integrity hooks walk these.
func (s *shardedStore) fileSubs() []*fileStore {
	out := make([]*fileStore, 0, len(s.subs))
	for _, sub := range s.subs {
		if fs, ok := sub.(*fileStore); ok {
			out = append(out, fs)
		}
	}
	return out
}

func (s *shardedStore) get(lpn int64) []byte              { return s.sub(lpn).get(lpn) }
func (s *shardedStore) getStamp(lpn int64) (uint64, bool) { return s.sub(lpn).getStamp(lpn) }
func (s *shardedStore) put(lpn int64, data []byte, stamp uint64) error {
	return s.sub(lpn).put(lpn, data, stamp)
}
func (s *shardedStore) remove(lpn int64) error { return s.sub(lpn).remove(lpn) }

// verify routes to the sub-store; sub-stores without integrity metadata
// (memStore) report intact.
func (s *shardedStore) verify(lpn int64) bool {
	if v, ok := s.sub(lpn).(storeVerifier); ok {
		return v.verify(lpn)
	}
	return true
}

func (s *shardedStore) takeCorrupt() []int64 {
	var out []int64
	for _, sub := range s.subs {
		if ct, ok := sub.(corruptTracker); ok {
			out = append(out, ct.takeCorrupt()...)
		}
	}
	return out
}

func (s *shardedStore) corruptCount() int64 {
	var total int64
	for _, sub := range s.subs {
		if ct, ok := sub.(corruptTracker); ok {
			total += ct.corruptCount()
		}
	}
	return total
}

// putRun routes a consecutive-LPN run to its sub-stores, keeping each
// sub-store's span intact so a file-backed sub can coalesce the pwrites.
// A run can cross a block boundary into another section mid-way, so the
// split walks by routing, not just by the first page.
func (s *shardedStore) putRun(lpns []int64, data [][]byte, stamps []uint64) error {
	for i := 0; i < len(lpns); {
		sub := s.sub(lpns[i])
		j := i + 1
		for j < len(lpns) && s.sub(lpns[j]) == sub {
			j++
		}
		if rp, ok := sub.(runPutter); ok {
			if err := rp.putRun(lpns[i:j], data[i:j], stamps[i:j]); err != nil {
				return err
			}
		} else {
			for k := i; k < j; k++ {
				if err := sub.put(lpns[k], data[k], stamps[k]); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

func (s *shardedStore) pages() int {
	total := 0
	for _, sub := range s.subs {
		total += sub.pages()
	}
	return total
}

func (s *shardedStore) maxStamp() uint64 {
	var max uint64
	for _, sub := range s.subs {
		if m := sub.maxStamp(); m > max {
			max = m
		}
	}
	return max
}

func (s *shardedStore) flush() error {
	var first error
	for _, sub := range s.subs {
		if err := sub.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushOf makes only the section holding lpn durable. A persist batch
// always stays within one shard, and syncing the sibling sections too
// would convoy every evictor's fsync stream on every other's — undoing
// exactly the concurrency the striped store exists for.
func (s *shardedStore) flushOf(lpn int64) error { return s.sub(lpn).flush() }

func (s *shardedStore) close() error {
	var first error
	for _, sub := range s.subs {
		if err := sub.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
