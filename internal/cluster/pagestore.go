package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// pageStore is the durable medium behind a live node: what survives once a
// page has been flushed from the cooperative buffer. Each page carries its
// write stamp (the node's monotonic per-page version) so that crash
// recovery can tell a stale peer backup from newer durable data.
type pageStore interface {
	// get returns the stored payload for lpn, or nil when absent.
	get(lpn int64) []byte
	// getStamp returns the stored write stamp for lpn.
	getStamp(lpn int64) (uint64, bool)
	// put stores the payload (exactly one page) with its write stamp.
	put(lpn int64, data []byte, stamp uint64) error
	// remove deletes the page (TRIM).
	remove(lpn int64) error
	// pages reports how many pages are stored.
	pages() int
	// maxStamp reports the largest stamp currently stored; a restarted
	// node resumes its stamp counter from here.
	maxStamp() uint64
	close() error
}

// memStore is the default in-memory medium (contents die with the process,
// like the simulator's SSD).
type memStore struct {
	m   map[int64]memPage
	max uint64
}

type memPage struct {
	data  []byte
	stamp uint64
}

func newMemStore() *memStore { return &memStore{m: make(map[int64]memPage)} }

func (s *memStore) get(lpn int64) []byte { return s.m[lpn].data }

func (s *memStore) getStamp(lpn int64) (uint64, bool) {
	p, ok := s.m[lpn]
	return p.stamp, ok
}

func (s *memStore) put(lpn int64, data []byte, stamp uint64) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[lpn] = memPage{data: cp, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	return nil
}

func (s *memStore) remove(lpn int64) error {
	delete(s.m, lpn)
	return nil
}

func (s *memStore) pages() int { return len(s.m) }

func (s *memStore) maxStamp() uint64 { return s.max }

func (s *memStore) close() error { return nil }

// fileStore persists pages in a single slotted file so a restarted daemon
// keeps its data. Layout: fixed-size records of [8-byte big-endian lpn |
// 8-byte big-endian write stamp | page payload]; a record whose lpn field
// is -1 is a free slot. The index is rebuilt by scanning the file at open.
type fileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	index    map[int64]fileSlot // lpn -> slot + cached stamp
	free     []int64            // reusable slots
	slots    int64              // total slots in the file
	max      uint64             // largest stamp seen
	sync     bool               // fsync after every put
}

type fileSlot struct {
	slot  int64
	stamp uint64
}

const fileStoreName = "pagestore.dat"

// fileHeaderSize is the per-record metadata: lpn + write stamp.
const fileHeaderSize = 16

// freeSlotMarker marks a deleted record.
const freeSlotMarker = int64(-1)

// newFileStore opens (creating if needed) the page store in dir.
func newFileStore(dir string, pageSize int, syncWrites bool) (*fileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: pagestore dir: %w", err)
	}
	path := filepath.Join(dir, fileStoreName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: pagestore: %w", err)
	}
	s := &fileStore{
		f:        f,
		pageSize: pageSize,
		index:    make(map[int64]fileSlot),
		sync:     syncWrites,
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *fileStore) recordSize() int64 { return int64(fileHeaderSize + s.pageSize) }

// load rebuilds the index from the slotted file.
func (s *fileStore) load() error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	rs := s.recordSize()
	if st.Size()%rs != 0 {
		return fmt.Errorf("cluster: pagestore size %d not a multiple of record size %d (page size or format mismatch?)",
			st.Size(), rs)
	}
	s.slots = st.Size() / rs
	var hdr [fileHeaderSize]byte
	for slot := int64(0); slot < s.slots; slot++ {
		if _, err := s.f.ReadAt(hdr[:], slot*rs); err != nil {
			return fmt.Errorf("cluster: pagestore load: %w", err)
		}
		lpn := int64(binary.BigEndian.Uint64(hdr[:8]))
		if lpn == freeSlotMarker {
			s.free = append(s.free, slot)
			continue
		}
		if lpn < 0 {
			return fmt.Errorf("cluster: pagestore corrupt lpn %d at slot %d", lpn, slot)
		}
		stamp := binary.BigEndian.Uint64(hdr[8:])
		s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
		if stamp > s.max {
			s.max = stamp
		}
	}
	return nil
}

func (s *fileStore) get(lpn int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return nil
	}
	buf := make([]byte, s.pageSize)
	if _, err := s.f.ReadAt(buf, fs.slot*s.recordSize()+fileHeaderSize); err != nil {
		return nil
	}
	return buf
}

func (s *fileStore) getStamp(lpn int64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	return fs.stamp, ok
}

func (s *fileStore) put(lpn int64, data []byte, stamp uint64) error {
	if len(data) != s.pageSize {
		return fmt.Errorf("cluster: pagestore put of %d bytes, want %d", len(data), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var slot int64
	if fs, ok := s.index[lpn]; ok {
		slot = fs.slot
	} else if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.slots
		s.slots++
	}
	rec := make([]byte, s.recordSize())
	binary.BigEndian.PutUint64(rec[:8], uint64(lpn))
	binary.BigEndian.PutUint64(rec[8:16], stamp)
	copy(rec[fileHeaderSize:], data)
	if _, err := s.f.WriteAt(rec, slot*s.recordSize()); err != nil {
		return fmt.Errorf("cluster: pagestore write: %w", err)
	}
	s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	if s.sync {
		return s.f.Sync()
	}
	return nil
}

func (s *fileStore) remove(lpn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return nil
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], ^uint64(0)) // freeSlotMarker (-1)
	if _, err := s.f.WriteAt(hdr[:], fs.slot*s.recordSize()); err != nil {
		return fmt.Errorf("cluster: pagestore remove: %w", err)
	}
	delete(s.index, lpn)
	s.free = append(s.free, fs.slot)
	return nil
}

func (s *fileStore) pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

func (s *fileStore) maxStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *fileStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil && err != io.EOF {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
