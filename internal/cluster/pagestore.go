package cluster

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// pageStore is the durable medium behind a live node: what survives once a
// page has been flushed from the cooperative buffer. Each page carries its
// write stamp (the node's monotonic per-page version) so that crash
// recovery can tell a stale peer backup from newer durable data.
//
// Implementations are safe for concurrent use: the sharded live node
// persists from several shard sections at once, so stores synchronize
// internally instead of leaning on a caller's lock. get returns a copy
// that the caller owns — mutating a read result can never corrupt the
// store.
type pageStore interface {
	// get returns a copy of the stored payload for lpn, or nil when absent.
	get(lpn int64) []byte
	// getStamp returns the stored write stamp for lpn.
	getStamp(lpn int64) (uint64, bool)
	// put stores the payload (exactly one page) with its write stamp.
	put(lpn int64, data []byte, stamp uint64) error
	// remove deletes the page (TRIM).
	remove(lpn int64) error
	// pages reports how many pages are stored.
	pages() int
	// maxStamp reports the largest stamp currently stored; a restarted
	// node resumes its stamp counter from here.
	maxStamp() uint64
	// flush makes every preceding put durable (fsync in sync mode). puts
	// are batched between flushes so an evictor draining a whole flush
	// unit pays one sync, not one per page.
	flush() error
	close() error
}

// sectionedStore is the optional per-section sync extension: flushOf makes
// only the section holding lpn durable. The sharded store implements it so
// a persist batch (always within one shard) syncs one file, not all.
type sectionedStore interface {
	flushOf(lpn int64) error
}

// fsBarrier is the optional whole-filesystem durability extension. All of
// one node's section files live in a single DataDir, so on hosts with
// syncfs(2) the group-commit coordinator can settle a pass spanning many
// sections with ONE filesystem-wide barrier instead of one fsync per
// section file — the per-pass syscall count stops scaling with the shard
// count. The barrier is opt-in (LiveConfig.SyncBarrier): syncfs flushes
// EVERYTHING dirty on the filesystem, so it only wins when the DataDir
// sits on its own filesystem; on a shared one it inherits every other
// tenant's writeback as tail latency. The protocol is: read each pending
// section's syncTarget, issue
// syncFS through any one of them, then markSynced the captured targets.
// Any put racing the barrier lands in a later generation and stays
// pending, exactly like the per-file generation check in fileStore.flush.
type fsBarrier interface {
	// barrierReady reports whether the section can take part in a
	// filesystem barrier (sync mode on, platform has syncfs).
	barrierReady() bool
	// syncTarget returns the put generation a barrier must cover for this
	// section's pending puts; ok is false when it is already durable.
	syncTarget() (target uint64, ok bool)
	// syncFS issues one durability barrier over the whole filesystem
	// holding the section, covering every sibling section on it too.
	syncFS() error
	// markSynced records that an external barrier covered generation
	// target, so later flushes of already-covered puts become no-ops.
	markSynced(target uint64)
}

// runPutter is the optional batched-put extension: store a run of
// consecutive-LPN pages in one shot, letting file-backed stores coalesce
// records that land in adjacent slots into single pwrites. The slices run
// parallel; semantics are identical to calling put page by page.
type runPutter interface {
	putRun(lpns []int64, data [][]byte, stamps []uint64) error
}

// memStore is the default in-memory medium (contents die with the process,
// like the simulator's SSD).
type memStore struct {
	mu  sync.Mutex
	m   map[int64]memPage
	max uint64
}

type memPage struct {
	data  []byte
	stamp uint64
}

func newMemStore() *memStore { return &memStore{m: make(map[int64]memPage)} }

func (s *memStore) get(lpn int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[lpn]
	if !ok {
		return nil
	}
	cp := make([]byte, len(p.data))
	copy(cp, p.data)
	return cp
}

func (s *memStore) getStamp(lpn int64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[lpn]
	return p.stamp, ok
}

func (s *memStore) put(lpn int64, data []byte, stamp uint64) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[lpn] = memPage{data: cp, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	return nil
}

func (s *memStore) remove(lpn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, lpn)
	return nil
}

func (s *memStore) pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *memStore) maxStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *memStore) flush() error { return nil }

func (s *memStore) close() error { return nil }

// fileStore persists pages in a single slotted file so a restarted daemon
// keeps its data. Layout: fixed-size records of [8-byte big-endian lpn |
// 8-byte big-endian write stamp | page payload]; a record whose lpn field
// is -1 is a free slot. The index is rebuilt by scanning the file at open.
type fileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	index    map[int64]fileSlot // lpn -> slot + cached stamp
	free     []int64            // reusable slots
	slots    int64              // total slots in the file
	max      uint64             // largest stamp seen
	sync     bool               // fsync on flush
	barrier  bool               // advertise the whole-filesystem barrier (see fsBarrier)
	puts     uint64             // write generation: bumped by every put

	// syncMu serializes fsync, deliberately apart from mu: holding the
	// record lock across f.Sync would stall every put (and get) behind the
	// sync, re-serializing exactly the put/fsync overlap the group-commit
	// pipeline depends on. synced is the put generation the last completed
	// sync covered; a flush whose target generation is already covered
	// returns without another fsync — concurrent flushes group-commit at
	// the file level. It is atomic (advanced monotonically) rather than
	// syncMu-guarded so the coordinator's filesystem barrier can publish
	// coverage without queueing behind an in-flight per-file fsync.
	syncMu sync.Mutex
	synced atomic.Uint64
}

// advanceSynced raises gen to at least v, never lowering it: coverage from
// a barrier and from a per-file fsync may land in either order.
func advanceSynced(gen *atomic.Uint64, v uint64) {
	for {
		cur := gen.Load()
		if v <= cur || gen.CompareAndSwap(cur, v) {
			return
		}
	}
}

type fileSlot struct {
	slot  int64
	stamp uint64
}

const fileStoreName = "pagestore.dat"

// fileHeaderSize is the per-record metadata: lpn + write stamp.
const fileHeaderSize = 16

// freeSlotMarker marks a deleted record.
const freeSlotMarker = int64(-1)

// newFileStore opens (creating if needed) the page store in dir.
func newFileStore(dir string, pageSize int, syncWrites bool) (*fileStore, error) {
	return newFileStoreAt(dir, fileStoreName, pageSize, syncWrites)
}

// newFileStoreAt opens a page store under an explicit file name; the
// sharded store gives each shard its own file so per-shard evictors fsync
// independent streams instead of convoying on one inode.
func newFileStoreAt(dir, name string, pageSize int, syncWrites bool) (*fileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: pagestore dir: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: pagestore: %w", err)
	}
	s := &fileStore{
		f:        f,
		pageSize: pageSize,
		index:    make(map[int64]fileSlot),
		sync:     syncWrites,
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *fileStore) recordSize() int64 { return int64(fileHeaderSize + s.pageSize) }

// load rebuilds the index from the slotted file.
func (s *fileStore) load() error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	rs := s.recordSize()
	if st.Size()%rs != 0 {
		return fmt.Errorf("cluster: pagestore size %d not a multiple of record size %d (page size or format mismatch?)",
			st.Size(), rs)
	}
	s.slots = st.Size() / rs
	var hdr [fileHeaderSize]byte
	for slot := int64(0); slot < s.slots; slot++ {
		if _, err := s.f.ReadAt(hdr[:], slot*rs); err != nil {
			return fmt.Errorf("cluster: pagestore load: %w", err)
		}
		lpn := int64(binary.BigEndian.Uint64(hdr[:8]))
		if lpn == freeSlotMarker {
			s.free = append(s.free, slot)
			continue
		}
		if lpn < 0 {
			return fmt.Errorf("cluster: pagestore corrupt lpn %d at slot %d", lpn, slot)
		}
		stamp := binary.BigEndian.Uint64(hdr[8:])
		s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
		if stamp > s.max {
			s.max = stamp
		}
	}
	return nil
}

func (s *fileStore) get(lpn int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return nil
	}
	buf := make([]byte, s.pageSize)
	if _, err := s.f.ReadAt(buf, fs.slot*s.recordSize()+fileHeaderSize); err != nil {
		return nil
	}
	return buf
}

func (s *fileStore) getStamp(lpn int64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	return fs.stamp, ok
}

func (s *fileStore) put(lpn int64, data []byte, stamp uint64) error {
	if len(data) != s.pageSize {
		return fmt.Errorf("cluster: pagestore put of %d bytes, want %d", len(data), s.pageSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var slot int64
	if fs, ok := s.index[lpn]; ok {
		slot = fs.slot
	} else if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.slots
		s.slots++
	}
	rec := make([]byte, s.recordSize())
	binary.BigEndian.PutUint64(rec[:8], uint64(lpn))
	binary.BigEndian.PutUint64(rec[8:16], stamp)
	copy(rec[fileHeaderSize:], data)
	if _, err := s.f.WriteAt(rec, slot*s.recordSize()); err != nil {
		return fmt.Errorf("cluster: pagestore write: %w", err)
	}
	s.index[lpn] = fileSlot{slot: slot, stamp: stamp}
	if stamp > s.max {
		s.max = stamp
	}
	s.puts++
	return nil
}

// runBufPool recycles the combined-record buffers putRun assembles, so a
// steady eviction stream doesn't allocate one per persist batch.
var runBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// putRun stores a run of consecutive-LPN pages. Records whose slots come
// out adjacent — the common case: a block's pages were first written
// together, so they were appended together — are combined into one
// WriteAt, halving (ppb=2) or better the pwrite syscalls per persist
// batch versus per-page put.
func (s *fileStore) putRun(lpns []int64, data [][]byte, stamps []uint64) error {
	for _, d := range data {
		if len(d) != s.pageSize {
			return fmt.Errorf("cluster: pagestore put of %d bytes, want %d", len(d), s.pageSize)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.recordSize()
	slots := make([]int64, len(lpns))
	for i, lpn := range lpns {
		if fs, ok := s.index[lpn]; ok {
			slots[i] = fs.slot
		} else if n := len(s.free); n > 0 {
			slots[i] = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			slots[i] = s.slots
			s.slots++
		}
	}
	bufp := runBufPool.Get().(*[]byte)
	defer runBufPool.Put(bufp)
	for i := 0; i < len(lpns); {
		j := i + 1
		for j < len(lpns) && slots[j] == slots[j-1]+1 {
			j++
		}
		need := int(rs) * (j - i)
		buf := (*bufp)[:0]
		if cap(buf) < need {
			buf = make([]byte, 0, need)
			*bufp = buf
		}
		buf = buf[:need]
		for k := i; k < j; k++ {
			rec := buf[(k-i)*int(rs):]
			binary.BigEndian.PutUint64(rec[:8], uint64(lpns[k]))
			binary.BigEndian.PutUint64(rec[8:16], stamps[k])
			copy(rec[fileHeaderSize:int(rs)], data[k])
		}
		if _, err := s.f.WriteAt(buf, slots[i]*rs); err != nil {
			return fmt.Errorf("cluster: pagestore write: %w", err)
		}
		for k := i; k < j; k++ {
			s.index[lpns[k]] = fileSlot{slot: slots[k], stamp: stamps[k]}
			if stamps[k] > s.max {
				s.max = stamps[k]
			}
		}
		i = j
	}
	s.puts++
	return nil
}

// flush makes every completed put durable. Generation tracking makes it
// both safe and cheap under concurrency: the target generation is read
// before taking syncMu, so a flush that finds its target already covered
// piggybacked on a sibling's completed fsync (syncMu means waiting for
// that fsync to finish, never just to start), and a put racing an fsync
// simply lands in a later generation for the next flush to cover.
func (s *fileStore) flush() error {
	if !s.sync {
		return nil
	}
	s.mu.Lock()
	target := s.puts
	s.mu.Unlock()
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced.Load() >= target {
		return nil
	}
	s.mu.Lock()
	covered := s.puts // everything written before this fsync starts
	s.mu.Unlock()
	if err := datasync(s.f); err != nil {
		return err
	}
	advanceSynced(&s.synced, covered)
	return nil
}

// fsBarrier implementation: see the interface comment for the protocol.

func (s *fileStore) barrierReady() bool { return s.sync && s.barrier && hasSyncFS }

func (s *fileStore) syncTarget() (uint64, bool) {
	if !s.sync {
		return 0, false
	}
	s.mu.Lock()
	target := s.puts
	s.mu.Unlock()
	if s.synced.Load() >= target {
		return 0, false
	}
	return target, true
}

func (s *fileStore) syncFS() error { return syncFilesystem(s.f) }

func (s *fileStore) markSynced(target uint64) { advanceSynced(&s.synced, target) }

func (s *fileStore) remove(lpn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.index[lpn]
	if !ok {
		return nil
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], ^uint64(0)) // freeSlotMarker (-1)
	if _, err := s.f.WriteAt(hdr[:], fs.slot*s.recordSize()); err != nil {
		return fmt.Errorf("cluster: pagestore remove: %w", err)
	}
	delete(s.index, lpn)
	s.free = append(s.free, fs.slot)
	return nil
}

func (s *fileStore) pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

func (s *fileStore) maxStamp() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

func (s *fileStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// fsync never legitimately returns io.EOF; any error here means the
	// final records may not have reached the medium, and it must surface
	// as a persist failure instead of being swallowed.
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// shardedStore stripes a pageStore across one sub-store per buffer shard,
// routed by the same block→shard function the buffer uses, so a shard's
// evictor only ever touches its own sub-store (and, with a fileStore
// backing, its own file descriptor and fsync stream). This is what keeps
// the durable medium from re-serializing the sharded write path.
type shardedStore struct {
	subs []pageStore
	ppb  int64
}

// newShardedMemStore builds an n-way striped in-memory store.
func newShardedMemStore(n, pagesPerBlock int) *shardedStore {
	s := &shardedStore{subs: make([]pageStore, n), ppb: int64(pagesPerBlock)}
	for i := range s.subs {
		s.subs[i] = newMemStore()
	}
	return s
}

// shardStoreName names shard i's backing file. Shard 0 keeps the legacy
// single-store name, so a 1-shard node reopens data written before
// sharding existed.
func shardStoreName(i int) string {
	if i == 0 {
		return fileStoreName
	}
	return fmt.Sprintf("pagestore-%d.dat", i)
}

// newShardedFileStore builds an n-way striped file store in dir. The
// shard count must be stable across restarts of the same DataDir: pages
// are routed to files by shard index, so reopening with a different count
// would look up pages in the wrong sub-store.
func newShardedFileStore(dir string, pageSize int, syncWrites, barrier bool, n, pagesPerBlock int) (*shardedStore, error) {
	s := &shardedStore{subs: make([]pageStore, n), ppb: int64(pagesPerBlock)}
	for i := range s.subs {
		sub, err := newFileStoreAt(dir, shardStoreName(i), pageSize, syncWrites)
		if err != nil {
			for j := 0; j < i; j++ {
				s.subs[j].close()
			}
			return nil, err
		}
		sub.barrier = barrier
		s.subs[i] = sub
	}
	return s, nil
}

func (s *shardedStore) sub(lpn int64) pageStore {
	return s.subs[uint64(lpn/s.ppb)%uint64(len(s.subs))]
}

func (s *shardedStore) get(lpn int64) []byte              { return s.sub(lpn).get(lpn) }
func (s *shardedStore) getStamp(lpn int64) (uint64, bool) { return s.sub(lpn).getStamp(lpn) }
func (s *shardedStore) put(lpn int64, data []byte, stamp uint64) error {
	return s.sub(lpn).put(lpn, data, stamp)
}
func (s *shardedStore) remove(lpn int64) error { return s.sub(lpn).remove(lpn) }

// putRun routes a consecutive-LPN run to its sub-stores, keeping each
// sub-store's span intact so a file-backed sub can coalesce the pwrites.
// A run can cross a block boundary into another section mid-way, so the
// split walks by routing, not just by the first page.
func (s *shardedStore) putRun(lpns []int64, data [][]byte, stamps []uint64) error {
	for i := 0; i < len(lpns); {
		sub := s.sub(lpns[i])
		j := i + 1
		for j < len(lpns) && s.sub(lpns[j]) == sub {
			j++
		}
		if rp, ok := sub.(runPutter); ok {
			if err := rp.putRun(lpns[i:j], data[i:j], stamps[i:j]); err != nil {
				return err
			}
		} else {
			for k := i; k < j; k++ {
				if err := sub.put(lpns[k], data[k], stamps[k]); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

func (s *shardedStore) pages() int {
	total := 0
	for _, sub := range s.subs {
		total += sub.pages()
	}
	return total
}

func (s *shardedStore) maxStamp() uint64 {
	var max uint64
	for _, sub := range s.subs {
		if m := sub.maxStamp(); m > max {
			max = m
		}
	}
	return max
}

func (s *shardedStore) flush() error {
	var first error
	for _, sub := range s.subs {
		if err := sub.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushOf makes only the section holding lpn durable. A persist batch
// always stays within one shard, and syncing the sibling sections too
// would convoy every evictor's fsync stream on every other's — undoing
// exactly the concurrency the striped store exists for.
func (s *shardedStore) flushOf(lpn int64) error { return s.sub(lpn).flush() }

func (s *shardedStore) close() error {
	var first error
	for _, sub := range s.subs {
		if err := sub.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
