package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// liveRing brings up n connected ring nodes on localhost at epoch 1.
func liveRing(t *testing.T, n, replication int) []*LiveNode {
	t.Helper()
	cfgs := make([]LiveConfig, n)
	for i := range cfgs {
		cfgs[i] = LiveConfig{
			Name: fmt.Sprintf("r%d", i), ListenAddr: "127.0.0.1:0",
			BufferPages: 64, RemotePages: 256, SSD: liveSSD(),
			HeartbeatInterval: 20 * time.Millisecond,
			CallTimeout:       500 * time.Millisecond,
		}
	}
	nodes, err := NewLiveRing(cfgs, replication)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, m := range nodes {
			m.Close()
		}
	})
	for _, m := range nodes {
		if err := m.ConnectPeer(); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

// ringOwnersOf recomputes the expected owner node(s) of an lpn written by
// home, using the same ring the nodes agreed on.
func ringOwnersOf(t *testing.T, nodes []*LiveNode, home *LiveNode, lpn int64) []*LiveNode {
	t.Helper()
	r, err := NewRing(home.RingMembers(), home.cfg.Replication)
	if err != nil {
		t.Fatal(err)
	}
	block := lpn / int64(home.ppb)
	ids := r.Owners(BlockKey(home.selfID, block), home.selfID)
	var owners []*LiveNode
	for _, id := range ids {
		for _, m := range nodes {
			if m.Addr() == id {
				owners = append(owners, m)
			}
		}
	}
	if len(owners) != len(ids) {
		t.Fatalf("owner IDs %v not all found among nodes", ids)
	}
	return owners
}

// TestLiveRingBasic: writes on every ring member must land their backups
// in the per-origin hold of exactly the ring-computed owner, and read
// back correctly everywhere.
func TestLiveRingBasic(t *testing.T) {
	nodes := liveRing(t, 3, 1)
	for _, m := range nodes {
		if got := m.RingEpoch(); got != 1 {
			t.Fatalf("epoch = %d, want 1", got)
		}
		if got := len(m.RingMembers()); got != 3 {
			t.Fatalf("members = %d, want 3", got)
		}
		if !m.PeerAlive() {
			t.Fatalf("node %s not alive after connect (states %v)", m.cfg.Name, m.PeerStates())
		}
	}
	ps := nodes[0].Device().PageSize()
	ppb := nodes[0].ppb
	for ni, m := range nodes {
		for blk := 0; blk < 8; blk++ {
			lpn := int64(blk * ppb)
			fill := byte(0x10*ni + blk + 1)
			if err := m.Write(lpn, page(fill, ps)); err != nil {
				t.Fatal(err)
			}
			got, err := m.Read(lpn, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, page(fill, ps)) {
				t.Fatalf("node %d block %d: read back wrong data", ni, blk)
			}
			owners := ringOwnersOf(t, nodes, m, lpn)
			if len(owners) != 1 {
				t.Fatalf("got %d owners, want 1", len(owners))
			}
			hold := owners[0].SnapshotRemoteFor(m.Addr())
			if !bytes.Equal(hold[lpn], page(fill, ps)) {
				t.Fatalf("node %d block %d: backup missing/wrong on owner %s", ni, blk, owners[0].cfg.Name)
			}
		}
	}
	// No node should hold a pair-mode (default-origin) backup.
	for _, m := range nodes {
		if len(m.SnapshotRemote()) != 0 {
			t.Fatalf("node %s has default-hold backups in ring mode", m.cfg.Name)
		}
	}
}

// TestLiveRingReplicationTwo: with replication 2 every written block must
// be backed up on two distinct members.
func TestLiveRingReplicationTwo(t *testing.T) {
	nodes := liveRing(t, 4, 2)
	ps := nodes[0].Device().PageSize()
	ppb := nodes[0].ppb
	home := nodes[0]
	for blk := 0; blk < 8; blk++ {
		lpn := int64(blk * ppb)
		if err := home.Write(lpn, page(byte(blk+1), ps)); err != nil {
			t.Fatal(err)
		}
		owners := ringOwnersOf(t, nodes, home, lpn)
		if len(owners) != 2 {
			t.Fatalf("block %d: %d owners, want 2", blk, len(owners))
		}
		for _, o := range owners {
			if hold := o.SnapshotRemoteFor(home.Addr()); !bytes.Equal(hold[lpn], page(byte(blk+1), ps)) {
				t.Fatalf("block %d: backup missing on owner %s", blk, o.cfg.Name)
			}
		}
	}
}

// TestLiveRingStaleEpochRejected: after a membership change, data-plane
// frames still routed under the previous epoch must be rejected by the
// survivors — the removed member was (deliberately) not told about the
// new layout, so its forwards carry the old epoch.
func TestLiveRingStaleEpochRejected(t *testing.T) {
	nodes := liveRing(t, 3, 1)
	ps := nodes[0].Device().PageSize()
	removed := nodes[2]

	// Survivors agree on a new 2-member layout at epoch 2.
	survivors := []string{nodes[0].Addr(), nodes[1].Addr()}
	epoch, err := nodes[0].ProposeMembership(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	if got := nodes[1].RingEpoch(); got != 2 {
		t.Fatalf("partner epoch = %d, want 2", got)
	}
	if got := removed.RingEpoch(); got != 1 {
		t.Fatalf("removed node's epoch = %d, want stale 1", got)
	}

	// The removed node still believes in epoch 1 and forwards there. Its
	// frames must bounce off the survivors' epoch check; the write itself
	// stays acked via local write-through.
	var rejected bool
	for blk := 0; blk < 8 && !rejected; blk++ {
		if err := removed.Write(int64(blk*removed.ppb), page(0xEE, ps)); err != nil {
			t.Fatal(err)
		}
		rejected = nodes[0].Stats().EpochRejects > 0 || nodes[1].Stats().EpochRejects > 0
	}
	if !rejected {
		t.Fatal("no stale-epoch frame was rejected")
	}
	// And the stale writes must not have landed in any survivor hold.
	for _, m := range nodes[:2] {
		if len(m.SnapshotRemoteFor(removed.Addr())) != 0 {
			t.Fatalf("stale-epoch backup landed on %s", m.cfg.Name)
		}
	}
}

// TestLiveRingJoinReprotects: growing the ring re-journals buffered dirty
// pages into their new owners, so a join is followed by warm backups under
// the new layout without waiting for new writes.
func TestLiveRingJoinReprotects(t *testing.T) {
	nodes := liveRing(t, 3, 1)
	ps := nodes[0].Device().PageSize()
	ppb := nodes[0].ppb
	home := nodes[0]
	for blk := 0; blk < 16; blk++ {
		if err := home.Write(int64(blk*ppb), page(byte(blk+1), ps)); err != nil {
			t.Fatal(err)
		}
	}

	// A fourth node joins: it must be told the new layout too, which
	// ProposeMembership does for every member of the NEW ring.
	extraCfg := LiveConfig{
		Name: "r3", ListenAddr: "127.0.0.1:0",
		BufferPages: 64, RemotePages: 256, SSD: liveSSD(),
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
	}
	extra, err := NewLiveNode(extraCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	grown := append([]string{extra.Addr()}, home.RingMembers()...)
	if _, err := home.ProposeMembership(grown); err != nil {
		t.Fatal(err)
	}
	all := append(append([]*LiveNode(nil), nodes...), extra)
	for _, m := range all {
		if got := m.RingEpoch(); got != 2 {
			t.Fatalf("node %s epoch = %d, want 2", m.cfg.Name, got)
		}
		if err := m.ConnectPeer(); err != nil {
			t.Fatal(err)
		}
	}

	// New writes route under the new layout, including onto the joiner.
	landed := false
	for blk := 16; blk < 48; blk++ {
		lpn := int64(blk * ppb)
		if err := home.Write(lpn, page(byte(blk), ps)); err != nil {
			t.Fatal(err)
		}
		owners := ringOwnersOf(t, all, home, lpn)
		if owners[0] == extra {
			if hold := extra.SnapshotRemoteFor(home.Addr()); bytes.Equal(hold[lpn], page(byte(blk), ps)) {
				landed = true
				break
			}
		}
	}
	if !landed {
		t.Fatal("no block routed onto the joined member")
	}
}
