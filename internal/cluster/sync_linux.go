//go:build linux

package cluster

import (
	"errors"
	"os"
	"runtime"
	"syscall"
)

// datasync flushes f's data (and any metadata needed to read it back,
// e.g. file size) to the medium via fdatasync. The page store's records
// are pure appends and in-place overwrites — no rename, no permission or
// timestamp dependence — so skipping the inode timestamp flush that a
// full fsync adds is free durability-wise and measurably cheaper on the
// evictor hot path, where the fsync stream dominates CPU.
func datasync(f *os.File) error {
	sc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	cerr := sc.Control(func(fd uintptr) {
		for {
			serr = syscall.Fdatasync(int(fd))
			if !errors.Is(serr, syscall.EINTR) {
				return
			}
		}
	})
	if cerr != nil {
		return cerr
	}
	if serr != nil {
		return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: serr}
	}
	return nil
}

// sysSyncfs is syncfs(2)'s per-architecture syscall number. The frozen
// syscall package predates the syscall (Linux 2.6.39), so the numbers are
// carried here; an architecture missing from the table just keeps the
// per-section fsync path.
var sysSyncfs, hasSyncFS = func() (uintptr, bool) {
	nums := map[string]uintptr{
		"amd64":   306,
		"386":     344,
		"arm":     373,
		"arm64":   267, // generic syscall table, shared by the newer ports
		"riscv64": 267,
		"loong64": 267,
		"ppc64":   348,
		"ppc64le": 348,
		"s390x":   338,
	}
	n, ok := nums[runtime.GOARCH]
	return n, ok
}()

// syncFilesystem flushes everything dirty on the filesystem holding f —
// the group-commit coordinator's whole-filesystem barrier: one syscall
// through any section's descriptor makes every section file on that
// filesystem durable in a single journal commit.
func syncFilesystem(f *os.File) error {
	if !hasSyncFS {
		return f.Sync()
	}
	sc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	cerr := sc.Control(func(fd uintptr) {
		for {
			_, _, errno := syscall.Syscall(sysSyncfs, fd, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				serr = errno
			}
			return
		}
	})
	if cerr != nil {
		return cerr
	}
	if serr != nil {
		return &os.PathError{Op: "syncfs", Path: f.Name(), Err: serr}
	}
	return nil
}
