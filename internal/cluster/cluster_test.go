package cluster

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"

	"flashcoop/internal/flash"
	"flashcoop/internal/ftl"
	"flashcoop/internal/ssd"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgHello, Seq: 1},
		{Type: MsgWriteFwd, Seq: 42, LPNs: []int64{1, 2, 3}, Data: []byte("abcdef")},
		{Type: MsgWorkloadInfo, Info: Info{WriteFrac: 0.91, Mem: 0.5, CPU: 0.25, Net: 0.125}},
		{Type: MsgError, Err: "boom"},
		{Type: MsgDiscard, LPNs: []int64{}},
	}
	for _, orig := range msgs {
		body, err := orig.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := got.Unmarshal(body); err != nil {
			t.Fatalf("%v: %v", orig.Type, err)
		}
		if got.Type != orig.Type || got.Seq != orig.Seq || got.Err != orig.Err {
			t.Fatalf("round trip: got %+v, want %+v", got, orig)
		}
		if len(got.LPNs) != len(orig.LPNs) {
			t.Fatalf("LPNs differ: %v vs %v", got.LPNs, orig.LPNs)
		}
		for i := range orig.LPNs {
			if got.LPNs[i] != orig.LPNs[i] {
				t.Fatalf("LPNs differ at %d", i)
			}
		}
		if !bytes.Equal(got.Data, orig.Data) && len(orig.Data) > 0 {
			t.Fatal("Data differs")
		}
		if got.Info != orig.Info {
			t.Fatalf("Info differs: %+v vs %+v", got.Info, orig.Info)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typ uint8, seq uint64, lpns []int64, data []byte, wf float64, errStr string) bool {
		if len(errStr) > 1000 {
			errStr = errStr[:1000]
		}
		orig := Message{
			Type: MsgType(typ), Seq: seq, LPNs: lpns, Data: data,
			Info: Info{WriteFrac: wf}, Err: errStr,
		}
		body, err := orig.Marshal()
		if err != nil {
			return len(body) > MaxFrameBytes // only oversize may fail
		}
		var got Message
		if err := got.Unmarshal(body); err != nil {
			return false
		}
		if got.Type != orig.Type || got.Seq != orig.Seq || got.Err != orig.Err {
			return false
		}
		if len(got.LPNs) != len(orig.LPNs) || !bytes.Equal(got.Data, orig.Data) {
			return false
		}
		// NaN-safe comparison via bit identity is not needed: quick
		// generates ordinary floats.
		return got.Info.WriteFrac == orig.Info.WriteFrac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	good, _ := (&Message{Type: MsgWriteFwd, LPNs: []int64{1}, Data: []byte{1, 2}}).Marshal()
	cases := [][]byte{
		nil,
		{1},
		good[:len(good)-1],                       // truncated
		append(good[:len(good):len(good)], 0xFF), // trailing byte
	}
	for i, b := range cases {
		var m Message
		if err := m.Unmarshal(b); err == nil {
			t.Errorf("case %d: malformed frame accepted", i)
		}
	}
	// Absurd LPN count must be rejected without huge allocation.
	bad := make([]byte, len(good))
	copy(bad, good)
	bad[9], bad[10], bad[11], bad[12] = 0xFF, 0xFF, 0xFF, 0xFF
	var m Message
	if err := m.Unmarshal(bad); err == nil {
		t.Error("absurd LPN count accepted")
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	orig := &Message{Type: MsgWriteFwd, Seq: 7, LPNs: []int64{9}, Data: []byte("x")}
	if err := WriteFrame(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != orig.Type || got.Seq != 7 || got.LPNs[0] != 9 {
		t.Fatalf("frame round trip: %+v", got)
	}
	// Oversized frame header refused.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&hdr); err == nil {
		t.Error("oversized frame accepted")
	}
}

func liveSSD() ssd.Config {
	return ssd.Config{
		Scheme: "page",
		FTL: ftl.Config{
			Flash:   flash.Small(256, 8),
			OPRatio: 0.2,
		},
	}
}

// livePair brings up two connected live nodes on localhost.
func livePair(t *testing.T) (*LiveNode, *LiveNode) {
	t.Helper()
	a, err := NewLiveNode(LiveConfig{
		Name: "a", ListenAddr: "127.0.0.1:0",
		BufferPages: 64, RemotePages: 128, SSD: liveSSD(),
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLiveNode(LiveConfig{
		Name: "b", ListenAddr: "127.0.0.1:0", PeerAddr: a.Addr(),
		BufferPages: 64, RemotePages: 128, SSD: liveSSD(),
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
	})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.SetPeer(b.Addr())
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func page(fill byte, ps int) []byte {
	p := make([]byte, ps)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestLiveWriteReadRoundTrip(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()
	if err := a.Write(10, page(0xAB, ps)); err != nil {
		t.Fatal(err)
	}
	got, err := a.Read(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0xAB, ps)) {
		t.Fatal("read returned wrong data")
	}
	// Backup must exist on the partner.
	if !b.RemoteContains(10) {
		t.Fatal("no backup on partner")
	}
	// Unwritten page reads as zeros.
	got, err = a.Read(999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, ps)) {
		t.Fatal("unwritten page not zero")
	}
	if a.Stats().Forwards != 1 {
		t.Errorf("stats = %+v", a.Stats())
	}
}

func TestLiveWriteUnaligned(t *testing.T) {
	a, _ := livePair(t)
	if err := a.Write(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("unaligned write accepted")
	}
}

func TestLiveEvictionPersistsData(t *testing.T) {
	a, _ := livePair(t)
	ps := a.Device().PageSize()
	// Overflow the 64-page buffer.
	for i := int64(0); i < 100; i++ {
		if err := a.Write(i*8, page(byte(i), ps)); err != nil {
			t.Fatal(err)
		}
	}
	// Eviction flushing is asynchronous; give the evictors a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && a.Stats().Persists == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if a.Stats().Persists == 0 {
		t.Fatal("nothing persisted despite overflow")
	}
	// Every written page must still read back correctly.
	for i := int64(0); i < 100; i++ {
		got, err := a.Read(i*8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d corrupted after eviction: %x", i*8, got[0])
		}
	}
}

func TestLiveRecoveryAfterCrash(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()
	for i := int64(0); i < 10; i++ {
		if err := a.Write(i, page(byte(0x80+i), ps)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a's crash: abrupt stop, nothing flushed.
	a.Crash()

	// A replacement node for a recovers from b's remote buffer.
	a2, err := NewLiveNode(LiveConfig{
		Name: "a2", ListenAddr: "127.0.0.1:0", PeerAddr: b.Addr(),
		BufferPages: 64, RemotePages: 128, SSD: liveSSD(),
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if err := a2.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := a2.RecoverFromPeer(); err != nil {
		t.Fatal(err)
	}
	// The dirty data survives on the recovered node.
	for i := int64(0); i < 10; i++ {
		got, err := a2.Read(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(0x80+i) {
			t.Fatalf("page %d lost in recovery: %x", i, got[0])
		}
	}
	// Partner's remote buffer was cleaned.
	if b.RemoteLen() != 0 {
		t.Errorf("remote buffer not cleaned: %d", b.RemoteLen())
	}
}

func TestLiveFailoverToWriteThrough(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()
	if err := a.Write(1, page(1, ps)); err != nil {
		t.Fatal(err)
	}
	// Kill b abruptly.
	b.Crash()

	// The next write detects the failure and degrades to write-through.
	if err := a.Write(2, page(2, ps)); err != nil {
		t.Fatal(err)
	}
	if a.PeerAlive() {
		t.Error("peer still alive after forward failure")
	}
	if a.Stats().ForwardFailures == 0 {
		t.Error("forward failure not recorded")
	}
	// Data still correct.
	got, err := a.Read(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatal("degraded write lost data")
	}
	// Dirty page 2 must be durable (write-through).
	if a.Buffer().IsDirty(2) {
		t.Error("degraded write left page dirty")
	}
}

func TestLiveHeartbeatDetectsFailure(t *testing.T) {
	a, b := livePair(t)
	ps := a.Device().PageSize()
	if err := a.Write(5, page(5, ps)); err != nil {
		t.Fatal(err)
	}
	a.StartHeartbeat()
	// Kill b.
	b.Crash()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if !a.PeerAlive() && a.Buffer().DirtyLen() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.PeerAlive() {
		t.Fatal("heartbeat never declared peer dead")
	}
	if a.Buffer().DirtyLen() != 0 {
		t.Fatal("failover did not flush dirty data")
	}
	if a.Stats().Failovers == 0 {
		t.Error("failover not counted")
	}
}

func TestLiveCloseFlushes(t *testing.T) {
	cfg := LiveConfig{
		Name: "solo", ListenAddr: "127.0.0.1:0",
		BufferPages: 64, RemotePages: 0, SSD: liveSSD(),
		CallTimeout: 200 * time.Millisecond,
	}
	n, err := NewLiveNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := n.Device().PageSize()
	if err := n.Write(3, page(3, ps)); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Buffer().DirtyLen() != 0 {
		t.Error("Close did not flush")
	}
}

func TestPeerClientSeqMismatch(t *testing.T) {
	// A server that answers with a wrong sequence number.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadFrame(conn); err != nil {
			return
		}
		_ = WriteFrame(conn, &Message{Type: MsgHeartbeatAck, Seq: 9999})
	}()
	p := newPeerClient(ln.Addr().String(), 500*time.Millisecond, nil)
	if _, err := p.call(&Message{Type: MsgHeartbeat}); err == nil {
		t.Fatal("sequence mismatch accepted")
	}
}

// TestLiveConcurrentWriters hammers one node from several goroutines and
// verifies data integrity afterwards (the node's mutex discipline).
func TestLiveConcurrentWriters(t *testing.T) {
	a, _ := livePair(t)
	ps := a.Device().PageSize()
	const workers, perWorker = 8, 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				lpn := int64(w*perWorker + i)
				if err := a.Write(lpn, page(byte(w), ps)); err != nil {
					errs <- err
					return
				}
				if _, err := a.Read(lpn, 1); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			lpn := int64(w*perWorker + i)
			got, err := a.Read(lpn, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(w) {
				t.Fatalf("lpn %d corrupted: %x, want %x", lpn, got[0], byte(w))
			}
		}
	}
}

// slowReader yields one byte per Read call, simulating a dribbling TCP
// stream; ReadFrame must reassemble frames regardless of segmentation.
type slowReader struct {
	data []byte
	pos  int
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

func TestReadFrameFromDribblingStream(t *testing.T) {
	var buf bytes.Buffer
	orig := &Message{Type: MsgWriteFwd, Seq: 3, LPNs: []int64{1, 2}, Data: []byte("payload")}
	if err := WriteFrame(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&slowReader{data: buf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || len(got.LPNs) != 2 || string(got.Data) != "payload" {
		t.Fatalf("frame reassembly wrong: %+v", got)
	}
	// A truncated stream yields an error, not a partial message.
	if _, err := ReadFrame(&slowReader{data: buf.Bytes()[:buf.Len()-2]}); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
