package check

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"flashcoop/internal/cluster"
	"flashcoop/internal/faultnet"
	"flashcoop/internal/flash"
	"flashcoop/internal/ftl"
	"flashcoop/internal/ssd"
	"flashcoop/internal/transport"
)

// The chaos harness drives a localhost cooperative pair with concurrent
// writers under a seeded fault schedule while crashing and recovering both
// sides, then checks the durability invariants at every quiescent point.
// A failing run prints its seed; rerun it with
//
//	CHAOS_SEED=<seed> go test -run TestChaos ./internal/cluster/check
//
// The default seed is fixed so CI stays stable; set CHAOS_SEED to explore.
//
// The fault model is single-failure: the script never takes both nodes
// down at once, matching the paper's availability argument — an acked
// write may live only in one node's RAM plus the partner's RAM, so losing
// both simultaneously is unrecoverable by design.
//
// Each writer owns a disjoint slice of the LPN space (lpn ≡ writer mod
// chaosWriters). With one writer per page, the order in which a page's
// writes are acknowledged is the order they took effect, which is what
// makes the Tracker's "last acked value must survive" judgment sound; two
// concurrent writers racing one page could have their acks observed in
// either order and the checker would cry wolf.

func chaosSeed(t *testing.T) int64 {
	seed := int64(20260805)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	return seed
}

const (
	chaosWriters  = 8
	chaosLPNSpace = 128 // small space forces overwrites and evictions
	chaosMinOps   = 200 // the run must exercise at least this many writes
)

// chaosShards picks the hot-path shard count (CHAOS_SHARDS to override;
// default 4 so the suite always runs the striped configuration).
func chaosShards() int {
	if s := os.Getenv("CHAOS_SHARDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 4
}

func chaosSSD() ssd.Config {
	return ssd.Config{
		Scheme: "page",
		FTL:    ftl.Config{Flash: flash.Small(256, 8), OPRatio: 0.2},
	}
}

// chaosPair is the harness state: node A takes all client writes, node B
// is its backup partner. Crash cycles swap in replacement nodes; writers
// reach the current A through the pointer guarded by mu.
type chaosPair struct {
	t            *testing.T
	seed         int64
	netA, netB   *faultnet.Network
	faults       faultnet.Faults
	addrA, addrB string
	dirA         string

	// mutate, when set, adjusts every node config before use (the
	// GC-throttled drill tightens the spare pool and defer thresholds).
	mutate func(*cluster.LiveConfig)

	mu sync.RWMutex // writers hold R around each op; cycles hold W to swap A
	a  *cluster.LiveNode
	b  *cluster.LiveNode
}

func (c *chaosPair) nodeConfig(name, addr, dir string, nw *faultnet.Network) cluster.LiveConfig {
	cfg := cluster.LiveConfig{
		Name:       name,
		ListenAddr: addr,
		Policy:     "lar",
		// RemotePages covers the whole LPN space so the RCT never drops a
		// backup for capacity — that overflow is a documented sizing
		// tradeoff (core.RemoteStore), not the bug class hunted here.
		// ... it also gives the RCT room for the flush-pipeline backlog:
		// evicted pages pinned in flight are volatile beyond BufferPages,
		// so the partner must hold more than BufferPages backups or an
		// overflow drop could lose an acked write to a crash (the sizing
		// rule in DESIGN.md §11).
		BufferPages: 48,
		RemotePages: chaosLPNSpace * 2,
		// Stripe the hot path and keep the per-shard eviction queues tiny
		// so the chaos run constantly exercises evictor backpressure and
		// reads that overlap in-flight flushes.
		Shards:            chaosShards(),
		EvictQueue:        4,
		SSD:               chaosSSD(),
		DataDir:           dir,
		HeartbeatInterval: 25 * time.Millisecond,
		FailureThreshold:  2,
		CallTimeout:       250 * time.Millisecond,
		Dialer:            nw.Dial,
		Listener:          nw.Listen,
	}
	if c.mutate != nil {
		c.mutate(&cfg)
	}
	return cfg
}

// startNode creates a node, retrying briefly: a replacement rebinds the
// crashed node's fixed address, which can race the old socket's teardown.
func (c *chaosPair) startNode(cfg cluster.LiveConfig) *cluster.LiveNode {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := cluster.NewLiveNode(cfg)
		if err == nil {
			return n
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("seed %d: node %s did not start: %v", c.seed, cfg.Name, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func (c *chaosPair) waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			c.t.Fatalf("seed %d: timed out waiting for %s", c.seed, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// calmly retries op until it succeeds. If it keeps failing for a while the
// fault schedule is suspended — an operator running a recovery would stop
// the chaos drill too — and restored afterwards.
func (c *chaosPair) calmly(what string, op func() error) {
	start := time.Now()
	calmed := false
	for {
		err := op()
		if err == nil {
			break
		}
		if time.Since(start) > 12*time.Second {
			c.t.Fatalf("seed %d: %s never succeeded: %v", c.seed, what, err)
		}
		if !calmed && time.Since(start) > 3*time.Second {
			c.netA.SetFaults(faultnet.Faults{})
			c.netB.SetFaults(faultnet.Faults{})
			calmed = true
		}
		time.Sleep(25 * time.Millisecond)
	}
	if calmed {
		c.netA.SetFaults(c.faults)
		c.netB.SetFaults(c.faults)
	}
}

// checkInvariants runs the durability checkers against the current pair.
// Call only at quiescent points (writers paused or finished).
func (c *chaosPair) checkInvariants(tr *Tracker, stage string) {
	vs := Durability(tr, c.a, c.b)
	vs = append(vs, DiscardSafety(tr, c.a, c.b)...)
	for _, v := range vs {
		c.t.Errorf("%s: %s", stage, v)
	}
	if len(vs) > 0 {
		c.t.Fatalf("invariant violations at %q; reproduce with CHAOS_SEED=%d", stage, c.seed)
	}
}

// restartB replaces a crashed B with a fresh node on the same address and
// waits for A's heartbeat to revive the partnership.
func (c *chaosPair) restartB() {
	c.b = c.startNode(c.nodeConfig("B", c.addrB, c.t.TempDir(), c.netB))
	c.b.SetPeer(c.addrA)
	c.waitFor("A to re-establish the pair", func() bool {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.a.PeerAlive()
	})
}

func runChaos(t *testing.T, seed int64, faults faultnet.Faults, tap *SeqChecker) {
	runChaosOver(t, seed, faults, tap, nil, nil)
}

// runChaosOver is runChaos with the fault layer stacked over a custom
// transport: a non-nil inet runs the whole drill on the in-process
// channel transport — same framing bytes, no loopback TCP — so the
// suite covers both the kernel path and the path the experiment grid
// uses.
func runChaosOver(t *testing.T, seed int64, faults faultnet.Faults, tap *SeqChecker, inet *transport.Net, mutate func(*cluster.LiveConfig)) cluster.LiveStats {
	t.Logf("chaos seed %d (rerun: CHAOS_SEED=%d go test -run %s ./internal/cluster/check)", seed, seed, t.Name())

	netA, netB := faultnet.New(seed), faultnet.New(seed+1)
	if inet != nil {
		netA = faultnet.NewOver(seed, inet.Dial, inet.Listen)
		netB = faultnet.NewOver(seed+1, inet.Dial, inet.Listen)
	}
	c := &chaosPair{
		t:      t,
		seed:   seed,
		netA:   netA,
		netB:   netB,
		faults: faults,
		dirA:   t.TempDir(),
		mutate: mutate,
	}
	if tap != nil {
		c.netA.SetTap(tap)
		c.netB.SetTap(tap)
	}

	// Bind both listeners fault-free on :0 first to learn the pair's
	// fixed addresses; replacement nodes rebind the same address.
	c.a = c.startNode(c.nodeConfig("A", "127.0.0.1:0", c.dirA, c.netA))
	c.b = c.startNode(c.nodeConfig("B", "127.0.0.1:0", t.TempDir(), c.netB))
	c.addrA, c.addrB = c.a.Addr(), c.b.Addr()
	c.a.SetPeer(c.addrB)
	c.b.SetPeer(c.addrA)
	c.calmly("initial hello", c.a.ConnectPeer)
	c.a.StartHeartbeat()
	defer func() {
		c.a.Close()
		c.b.Close()
	}()

	c.netA.SetFaults(faults)
	c.netB.SetFaults(faults)

	// Writers hammer node A until the cycle script finishes. Payloads are
	// random pages, so distinct attempts to one LPN are distinguishable
	// when the checkers compare copies against the history.
	tr := NewTracker()
	ps := c.a.Device().PageSize()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < chaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x9E3779B9))
			for {
				select {
				case <-done:
					return
				default:
				}
				lpn := int64(w) + chaosWriters*rng.Int63n(chaosLPNSpace/chaosWriters)
				data := make([]byte, ps)
				rng.Read(data)
				id := tr.Attempt(lpn, data)
				c.mu.RLock()
				err := c.a.Write(lpn, data)
				c.mu.RUnlock()
				if err == nil {
					tr.Acked(lpn, id)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// --- Phase 0: warm up with live replication traffic.
	c.waitFor("warmup writes", func() bool { return tr.Ops() >= chaosMinOps+50 })

	// --- Phase 1: asymmetric partition. A cannot reach B, so forwards
	// fail and A degrades to write-through — while B, which can still
	// serve, keeps holding now-stale backups. Healing re-pairs them; the
	// stale backups stay on B until overwritten, arming the stale-recovery
	// trap that phase 3's crash must not fall into.
	c.netA.SetPartitioned(true)
	c.waitFor("A to declare B dead", func() bool { return !c.a.PeerAlive() })
	time.Sleep(200 * time.Millisecond) // degraded writes pile up
	c.netA.SetPartitioned(false)
	c.waitFor("partition to heal", func() bool { return c.a.PeerAlive() })

	// --- Phase 2: backup failure, triggered from inside the fault
	// schedule: a crash-at-step hook fires B's crash mid-traffic. A loses
	// the backup target, fails over, and flushes its dirty data durable.
	crashed := make(chan struct{})
	c.netB.CrashAt(c.netB.Steps()+20, func() {
		// The hook runs on one of B's connection goroutines; Crash waits
		// for those same goroutines, so it must run elsewhere.
		go func() {
			c.b.Crash()
			close(crashed)
		}()
	})
	select {
	case <-crashed:
	case <-time.After(15 * time.Second):
		t.Fatalf("seed %d: crash-at-step hook never fired", seed)
	}
	c.waitFor("A to fail over", func() bool { return !c.a.PeerAlive() })
	time.Sleep(150 * time.Millisecond) // failover flush + degraded writes
	c.restartB()

	// --- Phase 3: primary failure. A crashes mid-write, losing its RAM;
	// a replacement reopens the same page store and recovers the lost
	// dirty pages from B's RCT. Acked writes must all survive the swap.
	c.a.Crash()
	c.mu.Lock()
	a2 := c.startNode(c.nodeConfig("A", c.addrA, c.dirA, c.netA))
	a2.SetPeer(c.addrB)
	c.calmly("post-crash hello", a2.ConnectPeer)
	c.calmly("recover from peer", a2.RecoverFromPeer)
	a2.StartHeartbeat()
	c.a = a2
	c.checkInvariants(tr, "after primary crash+recovery")
	c.mu.Unlock()

	// --- Phase 4: second backup failure, this time a straight kill, so
	// both crash styles (mid-schedule hook and external) are exercised.
	time.Sleep(150 * time.Millisecond)
	c.b.Crash()
	c.waitFor("A to fail over again", func() bool { return !c.a.PeerAlive() })
	time.Sleep(150 * time.Millisecond)
	c.restartB()

	// --- Wind down and verify.
	time.Sleep(150 * time.Millisecond)
	close(done)
	wg.Wait()

	c.checkInvariants(tr, "final state")

	// Read-back: node A must serve a tracked value for every acked page.
	for _, lpn := range tr.Pages() {
		got, err := c.a.Read(lpn, 1)
		if err != nil {
			t.Fatalf("seed %d: final read of lpn %d: %v", seed, lpn, err)
		}
		if !tr.Valid(lpn, got) {
			t.Errorf("final read of lpn %d returned an untracked value; reproduce with CHAOS_SEED=%d", lpn, seed)
		}
	}

	if tap != nil {
		for _, v := range tap.Violations() {
			t.Errorf("wire: %s (reproduce with CHAOS_SEED=%d)", v, seed)
		}
	}
	if n := tr.Ops(); n < chaosMinOps {
		t.Errorf("only %d write attempts; the schedule must drive at least %d", n, chaosMinOps)
	}

	st := c.a.Stats()
	t.Logf("ops=%d acked_pages=%d forwards=%d fwd_failures=%d failovers=%d stale_recovery_skips=%d drain_defers=%d discard_defers=%d net_steps=%d/%d",
		tr.Ops(), len(tr.Pages()), st.Forwards, st.ForwardFailures, st.Failovers,
		st.StaleRecoverySkips, st.DrainDeferrals, st.DiscardDeferrals, c.netA.Steps(), c.netB.Steps())
	return st
}

// TestChaosClean runs the script under framing-preserving faults (latency
// and connection resets) with the wire-level seq checker tapped in.
func TestChaosClean(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	runChaos(t, chaosSeed(t), faultnet.Faults{
		DelayProb: 0.2,
		DelayMax:  2 * time.Millisecond,
		ResetProb: 0.01,
	}, NewSeqChecker())
}

// TestChaosCorrupting adds byte-level mangling — dropped, duplicated, and
// truncated frames — which desynchronizes framing and drives the decode/
// session-teardown/redial paths. No seq tap: reassembly is meaningless on
// a deliberately garbled stream.
func TestChaosCorrupting(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	runChaos(t, chaosSeed(t)+100, faultnet.Faults{
		DelayProb:    0.15,
		DelayMax:     time.Millisecond,
		DropProb:     0.003,
		DupProb:      0.006,
		TruncateProb: 0.003,
		ResetProb:    0.008,
	}, nil)
}

// TestChaosInproc runs the clean-fault script on the in-process channel
// transport (internal/transport) instead of loopback TCP: the durability
// invariants must hold on the exact framing code the experiment grid
// exercises, with the group-commit syncer in its default configuration.
func TestChaosInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	runChaosOver(t, chaosSeed(t)+200, faultnet.Faults{
		DelayProb: 0.2,
		DelayMax:  2 * time.Millisecond,
		ResetProb: 0.01,
	}, NewSeqChecker(), transport.NewNet(), nil)
}

// TestChaosGCThrottled runs the clean-fault script with both nodes'
// spare pools squeezed so the FTLs report sustained GC pressure, and the
// defer knobs on a hair trigger (defer at any nonzero pressure, visible
// backoff window). The drain and discard deferral paths then fire
// constantly while partitions, crashes, and recoveries run — and the
// same durability and discard-safety invariants must hold: deferral may
// delay flushes and advisory discards, never drop or misorder them.
func TestChaosGCThrottled(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	throttled := func(cfg *cluster.LiveConfig) {
		// A flash barely larger than the chaos LPN space: the write churn
		// fills it, simulated GC runs continuously, and the free pool
		// hovers at the watermarks so GCPressure stays nonzero.
		cfg.SSD = ssd.Config{
			Scheme: "page",
			FTL:    ftl.Config{Flash: flash.Small(24, 8), OPRatio: 0.2},
		}
		cfg.GCDeferThreshold = 0.01
		cfg.GCDrainBackoff = 2 * time.Millisecond
	}
	st := runChaosOver(t, chaosSeed(t)+300, faultnet.Faults{
		DelayProb: 0.2,
		DelayMax:  2 * time.Millisecond,
		ResetProb: 0.01,
	}, NewSeqChecker(), nil, throttled)
	// The drill only means something if the throttle actually engaged.
	if st.DrainDeferrals == 0 && st.DiscardDeferrals == 0 {
		t.Error("GC-throttled drill never deferred a drain or a discard; the pressure path did not engage")
	}
}
