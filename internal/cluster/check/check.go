// Package check contains the durability invariant checkers for a
// cooperative FlashCoop pair. It is a testing aid: a Tracker records every
// write attempt a client makes and which of them were acknowledged, and
// the checkers compare that history against snapshots of the pair's state
// (local dirty buffer, partner RCT backups, persisted page store) taken at
// a quiescent point — after a crash, a failover, or a recovery.
//
// The invariants:
//
//  1. Acked-write durability (Durability): every acknowledged write is
//     reconstructible from local buffer ∪ peer RCT ∪ persisted store.
//     A concurrent attempt that was never acknowledged may legally have
//     replaced the acked value (it raced the ack and partially applied),
//     so a copy matching any open attempt also satisfies the invariant;
//     what is never legal is the page holding no tracked value at all.
//  2. Discard safety (DiscardSafety): a backup discard is only issued
//     after the page is durable, so a page absent from both the partner
//     RCT and the local dirty buffer must be in the persisted store.
//  3. Seq/ack sanity (SeqChecker, seqcheck.go): request seqs on a
//     connection are never reused and every response matches exactly one
//     outstanding request.
package check

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// NodeState is the inspection surface a checker needs from one node.
// *cluster.LiveNode satisfies it; unit tests use fakes.
type NodeState interface {
	// SnapshotDirty returns the locally buffered dirty payloads by LPN.
	SnapshotDirty() map[int64][]byte
	// SnapshotRemote returns the partner backups held by this node by LPN.
	SnapshotRemote() map[int64][]byte
	// DurableGet returns the persisted payload for lpn, or nil.
	DurableGet(lpn int64) []byte
}

// Violation is one invariant breach.
type Violation struct {
	Invariant string // "durability", "discard-safety", "seq"
	LPN       int64  // page concerned, or -1 for connection-level breaches
	Detail    string
}

func (v Violation) String() string {
	if v.LPN < 0 {
		return fmt.Sprintf("[%s] %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("[%s] lpn %d: %s", v.Invariant, v.LPN, v.Detail)
}

// Tracker records the client-visible write history of one node: every
// attempt, and which attempt's value was last acknowledged per page. It is
// safe for concurrent use by many writer goroutines.
//
// An attempt that never gets Acked stays registered forever: the write may
// have partially applied (its error raced the data), so its value remains
// a legal occupant of the page. Acknowledged attempts collapse into the
// page's single lastAcked value.
type Tracker struct {
	mu     sync.Mutex
	nextID uint64
	pages  map[int64]*pageHist
}

type pageHist struct {
	acked    []byte            // value of the most recent acked attempt
	attempts map[uint64][]byte // open (unacked or failed) attempts
}

// NewTracker builds an empty history.
func NewTracker() *Tracker {
	return &Tracker{pages: make(map[int64]*pageHist)}
}

// Attempt registers a write of data to lpn about to be issued and returns
// a token for Acked. The payload is copied.
func (t *Tracker) Attempt(lpn int64, data []byte) uint64 {
	cp := make([]byte, len(data))
	copy(cp, data)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	h := t.pages[lpn]
	if h == nil {
		h = &pageHist{attempts: make(map[uint64][]byte)}
		t.pages[lpn] = h
	}
	h.attempts[t.nextID] = cp
	return t.nextID
}

// Acked marks the attempt as acknowledged: its value becomes the page's
// required-durable value and the attempt leaves the open set.
func (t *Tracker) Acked(lpn int64, id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.pages[lpn]
	if h == nil || h.attempts[id] == nil {
		return
	}
	h.acked = h.attempts[id]
	delete(h.attempts, id)
}

// Pages lists every LPN with at least one acknowledged write, sorted.
func (t *Tracker) Pages() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, 0, len(t.pages))
	for lpn, h := range t.pages {
		if h.acked != nil {
			out = append(out, lpn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ops reports the total number of attempts registered.
func (t *Tracker) Ops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// Valid reports whether data is a legal occupant of lpn: the last acked
// value or any open attempt's value.
func (t *Tracker) Valid(lpn int64, data []byte) bool {
	if data == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.pages[lpn]
	if h == nil {
		return false
	}
	if h.acked != nil && bytes.Equal(h.acked, data) {
		return true
	}
	for _, a := range h.attempts {
		if bytes.Equal(a, data) {
			return true
		}
	}
	return false
}

// RemoteHolder is the surface a ring backup holder exposes: its per-origin
// hold snapshot. *cluster.LiveNode satisfies it.
type RemoteHolder interface {
	// SnapshotRemoteFor returns the backups this node holds for the named
	// origin (a member ID) by LPN.
	SnapshotRemoteFor(origin string) map[int64][]byte
}

// RingRemotes gathers every live holder's backups for one origin. On a
// ring the origin's pages are spread across its partners (and, after a
// membership change, possibly duplicated on former owners with stale
// versions), so the checkers must consider the union: a copy on ANY
// holder counts, and the stamp guards make stale duplicates harmless.
// Nil holders (crashed members) are skipped.
func RingRemotes(origin string, holders ...RemoteHolder) []map[int64][]byte {
	out := make([]map[int64][]byte, 0, len(holders))
	for _, h := range holders {
		if h == nil {
			continue
		}
		out = append(out, h.SnapshotRemoteFor(origin))
	}
	return out
}

// copies gathers every copy of lpn the cluster currently holds for the
// tracked node: its dirty buffer, each remote map, and its store.
func copies(lpn int64, dirty map[int64][]byte, remotes []map[int64][]byte, local NodeState) [][]byte {
	var out [][]byte
	if pg := dirty[lpn]; pg != nil {
		out = append(out, pg)
	}
	for _, remote := range remotes {
		if pg := remote[lpn]; pg != nil {
			out = append(out, pg)
		}
	}
	if pg := local.DurableGet(lpn); pg != nil {
		out = append(out, pg)
	}
	return out
}

// Durability checks invariant 1 against a quiesced pair: for every page
// with an acknowledged write, at least one copy across local dirty buffer,
// partner RCT, and persisted store must hold a tracked value. peer is the
// partner that backs up local's writes; pass nil when it is down.
func Durability(t *Tracker, local, peer NodeState) []Violation {
	var remotes []map[int64][]byte
	if peer != nil {
		remotes = append(remotes, peer.SnapshotRemote())
	}
	return DurabilityRemotes(t, local, remotes)
}

// DurabilityRemotes is Durability over an arbitrary set of backup holders
// — the ring form, where local's pages are spread across several
// partners' per-origin holds (see RingRemotes).
func DurabilityRemotes(t *Tracker, local NodeState, remotes []map[int64][]byte) []Violation {
	dirty := local.SnapshotDirty()
	var out []Violation
	for _, lpn := range t.Pages() {
		cs := copies(lpn, dirty, remotes, local)
		if len(cs) == 0 {
			out = append(out, Violation{
				Invariant: "durability", LPN: lpn,
				Detail: "acked write has no copy anywhere (buffer, peer RCT, store)",
			})
			continue
		}
		ok := false
		for _, c := range cs {
			if t.Valid(lpn, c) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, Violation{
				Invariant: "durability", LPN: lpn,
				Detail: fmt.Sprintf("%d copies exist but none holds a tracked value (acked write lost or corrupted)", len(cs)),
			})
		}
	}
	return out
}

// DiscardSafety checks invariant 2: a page whose backup is gone from the
// partner RCT and which is no longer dirty locally must be durable — the
// node only issues a discard after persisting the page, so "no backup, no
// buffer, no store copy" means a discard ran ahead of durability.
func DiscardSafety(t *Tracker, local, peer NodeState) []Violation {
	var remotes []map[int64][]byte
	if peer != nil {
		remotes = append(remotes, peer.SnapshotRemote())
	}
	return DiscardSafetyRemotes(t, local, remotes)
}

// DiscardSafetyRemotes is DiscardSafety over an arbitrary set of backup
// holders (the ring form; see RingRemotes).
func DiscardSafetyRemotes(t *Tracker, local NodeState, remotes []map[int64][]byte) []Violation {
	dirty := local.SnapshotDirty()
	var out []Violation
	for _, lpn := range t.Pages() {
		if dirty[lpn] != nil {
			continue // a live copy exists upstream of the store
		}
		held := false
		for _, remote := range remotes {
			if remote[lpn] != nil {
				held = true
				break
			}
		}
		if held {
			continue
		}
		if pg := local.DurableGet(lpn); pg == nil {
			out = append(out, Violation{
				Invariant: "discard-safety", LPN: lpn,
				Detail: "backup discarded and buffer clean, but page not in persisted store",
			})
		} else if !t.Valid(lpn, pg) {
			out = append(out, Violation{
				Invariant: "discard-safety", LPN: lpn,
				Detail: "only remaining copy (persisted store) holds an untracked value",
			})
		}
	}
	return out
}
