package check

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flashcoop/internal/cluster"
	"flashcoop/internal/faultnet"
)

// The membership-churn harness drives an N-node cooperative ring under a
// seeded fault schedule while the member list itself churns: a node joins,
// a node leaves, a backup crashes and is crashed AGAIN mid-resync, and
// finally the primary (the node taking all client writes) crashes and
// recovers its RAM from the surviving holders. The pair suite's durability
// and discard-safety invariants are checked after every heal, with the
// remote side generalized to the UNION of every live member's per-origin
// hold — on a ring the primary's backups are spread across its partners,
// and after a reshape stale duplicates may linger on former owners.
//
// A failing run prints its seed; rerun one subtest with
//
//	CHAOS_SEED=<seed> go test -run 'TestChaosMembershipChurn/<seed>' ./internal/cluster/check

const ringSlots = 4 // 3-node initial ring + one joiner

// chaosRing is the harness state: slot 0 is the primary taking all client
// writes; slots 1..3 are backups that join, leave, and crash. Writers
// reach the current primary through the pointer guarded by mu.
type chaosRing struct {
	t      *testing.T
	seed   int64
	faults faultnet.Faults
	nets   []*faultnet.Network
	addrs  []string
	dir0   string // the primary's page store survives its crash

	mu     sync.RWMutex
	nodes  []*cluster.LiveNode
	inRing []bool // slots currently in the layout
	epoch  uint64
}

func (c *chaosRing) nodeConfig(name, addr, dir string, nw *faultnet.Network) cluster.LiveConfig {
	return cluster.LiveConfig{
		Name:       name,
		ListenAddr: addr,
		Policy:     "lar",
		// Same sizing rationale as the pair harness (chaos_test.go): the
		// RCT must cover the LPN space plus the flush-pipeline backlog so
		// capacity overflow never masquerades as a durability bug.
		BufferPages:       48,
		RemotePages:       chaosLPNSpace * 2,
		Shards:            chaosShards(),
		EvictQueue:        4,
		SSD:               chaosSSD(),
		DataDir:           dir,
		Replication:       1,
		HeartbeatInterval: 25 * time.Millisecond,
		FailureThreshold:  2,
		CallTimeout:       250 * time.Millisecond,
		Dialer:            nw.Dial,
		Listener:          nw.Listen,
	}
}

func (c *chaosRing) startNode(slot int, dir string) *cluster.LiveNode {
	cfg := c.nodeConfig(fmt.Sprintf("R%d", slot), c.addrs[slot], dir, c.nets[slot])
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := cluster.NewLiveNode(cfg)
		if err == nil {
			return n
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("seed %d: node R%d did not start: %v", c.seed, slot, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (c *chaosRing) waitFor(what string, cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			c.t.Fatalf("seed %d: timed out waiting for %s", c.seed, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// calmly retries op until it succeeds, suspending the fault schedule on
// every net if it keeps failing (as an operator running a reconfiguration
// would), and restoring it afterwards.
func (c *chaosRing) calmly(what string, op func() error) {
	start := time.Now()
	calmed := false
	for {
		err := op()
		if err == nil {
			break
		}
		if time.Since(start) > 12*time.Second {
			c.t.Fatalf("seed %d: %s never succeeded: %v", c.seed, what, err)
		}
		if !calmed && time.Since(start) > 3*time.Second {
			for _, nw := range c.nets {
				nw.SetFaults(faultnet.Faults{})
			}
			calmed = true
		}
		time.Sleep(25 * time.Millisecond)
	}
	if calmed {
		for _, nw := range c.nets {
			nw.SetFaults(c.faults)
		}
	}
}

// layoutMembers is the member-ID list of the current layout.
func (c *chaosRing) layoutMembers() []string {
	var members []string
	for s := 0; s < ringSlots; s++ {
		if c.inRing[s] {
			members = append(members, c.addrs[s])
		}
	}
	return members
}

// propose pushes the current c.inRing layout through the primary's
// ProposeMembership and waits for every live member of the new layout to
// adopt the epoch. Broadcast failures re-propose (bumping the epoch), the
// documented retry path.
func (c *chaosRing) propose(what string) {
	members := c.layoutMembers()
	c.calmly(what, func() error {
		e, err := c.nodes[0].ProposeMembership(members)
		if err == nil {
			c.epoch = e
		}
		return err
	})
	c.waitFor(what+": epoch convergence", func() bool {
		for s := 0; s < ringSlots; s++ {
			if c.inRing[s] && c.nodes[s] != nil && c.nodes[s].RingEpoch() < c.epoch {
				return false
			}
		}
		return true
	})
}

// primarySees reports the primary's lifecycle state for a slot's link.
func (c *chaosRing) primarySees(slot int) (cluster.PeerState, bool) {
	st, ok := c.nodes[0].PeerStates()[c.addrs[slot]]
	return st, ok
}

// checkInvariants runs the ring-generalized checkers against the primary.
// Call only with writers quiesced (c.mu write-held or writers stopped).
func (c *chaosRing) checkInvariants(tr *Tracker, stage string) {
	var holders []RemoteHolder
	for s := 1; s < ringSlots; s++ {
		if c.nodes[s] != nil {
			holders = append(holders, c.nodes[s])
		}
	}
	remotes := RingRemotes(c.addrs[0], holders...)
	vs := DurabilityRemotes(tr, c.nodes[0], remotes)
	vs = append(vs, DiscardSafetyRemotes(tr, c.nodes[0], remotes)...)
	for _, v := range vs {
		c.t.Errorf("%s: %s", stage, v)
	}
	if len(vs) > 0 {
		c.t.Fatalf("invariant violations at %q; reproduce with CHAOS_SEED=%d", stage, c.seed)
	}
}

// crashBackupMidResync crashes a backup slot twice: once to drive the
// primary into degraded writes, and once more while the replacement is
// being resynced — the journal push must survive losing its target and
// complete against the second replacement.
func (c *chaosRing) crashBackupMidResync(slot int) {
	c.nodes[slot].Crash()
	c.nodes[slot] = nil
	c.waitFor(fmt.Sprintf("primary to see R%d dead", slot), func() bool {
		st, ok := c.primarySees(slot)
		return ok && st != cluster.StateHealthy && st != cluster.StateSuspect
	})
	time.Sleep(150 * time.Millisecond) // degraded writes pile up, journal grows

	// First replacement: fresh store, current layout. Crash it the moment
	// the primary's link leaves Degraded — mid-probe or mid-resync.
	n := c.startNode(slot, c.t.TempDir())
	if err := n.SetMembers(c.epoch, c.layoutMembers()); err != nil {
		c.t.Fatalf("seed %d: replacement R%d rejected layout: %v", c.seed, slot, err)
	}
	n.StartHeartbeat()
	c.waitFor(fmt.Sprintf("primary to start reviving R%d", slot), func() bool {
		st, _ := c.primarySees(slot)
		return st == cluster.StateProbing || st == cluster.StateResyncing || st == cluster.StateHealthy
	})
	n.Crash()
	c.waitFor(fmt.Sprintf("primary to see R%d dead again", slot), func() bool {
		st, ok := c.primarySees(slot)
		return ok && (st == cluster.StateDegraded || st == cluster.StateProbing)
	})

	// Second replacement heals for good.
	n = c.startNode(slot, c.t.TempDir())
	if err := n.SetMembers(c.epoch, c.layoutMembers()); err != nil {
		c.t.Fatalf("seed %d: replacement R%d rejected layout: %v", c.seed, slot, err)
	}
	c.calmly(fmt.Sprintf("replacement R%d hello", slot), n.ConnectPeer)
	n.StartHeartbeat()
	c.nodes[slot] = n
	c.waitFor(fmt.Sprintf("primary to heal R%d", slot), func() bool {
		st, _ := c.primarySees(slot)
		return st == cluster.StateHealthy
	})
}

func runChurn(t *testing.T, seed int64) {
	t.Logf("churn seed %d (rerun: CHAOS_SEED=%d go test -run 'TestChaosMembershipChurn/%d' ./internal/cluster/check)",
		seed, seed, seed)
	rng := rand.New(rand.NewSource(seed))
	faults := faultnet.Faults{
		DelayProb: 0.2,
		DelayMax:  2 * time.Millisecond,
		ResetProb: 0.01,
	}
	c := &chaosRing{
		t: t, seed: seed, faults: faults,
		nets:   make([]*faultnet.Network, ringSlots),
		addrs:  make([]string, ringSlots),
		nodes:  make([]*cluster.LiveNode, ringSlots),
		inRing: make([]bool, ringSlots),
		dir0:   t.TempDir(),
	}
	// One seq checker per network: faultnet conn IDs are per-Network, so a
	// shared checker would interleave different networks' streams under
	// one ID and cry wolf.
	taps := make([]*SeqChecker, ringSlots)
	for s := 0; s < ringSlots; s++ {
		c.nets[s] = faultnet.New(seed + int64(s))
		taps[s] = NewSeqChecker()
		c.nets[s].SetTap(taps[s])
		c.addrs[s] = "127.0.0.1:0"
	}

	// Bind all slots fault-free first to learn their fixed addresses;
	// replacements rebind the same address. Slot 3 starts outside the ring
	// (a solo node waiting to join).
	for s := 0; s < ringSlots; s++ {
		dir := c.dir0
		if s != 0 {
			dir = t.TempDir()
		}
		c.nodes[s] = c.startNode(s, dir)
		c.addrs[s] = c.nodes[s].Addr()
		c.inRing[s] = s < 3
	}
	defer func() {
		for _, n := range c.nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for s := 0; s < 3; s++ {
		if err := c.nodes[s].SetMembers(1, c.layoutMembers()); err != nil {
			t.Fatal(err)
		}
	}
	c.epoch = 1
	c.calmly("initial hello", c.nodes[0].ConnectPeer)
	for s := 0; s < ringSlots; s++ {
		c.nodes[s].StartHeartbeat()
	}
	for _, nw := range c.nets {
		nw.SetFaults(faults)
	}

	// Writers hammer the primary; disjoint LPN slices per writer keep the
	// Tracker's last-acked judgment sound (see chaos_test.go).
	tr := NewTracker()
	ps := c.nodes[0].Device().PageSize()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < chaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed + int64(w)*0x9E3779B9))
			for {
				select {
				case <-done:
					return
				default:
				}
				lpn := int64(w) + chaosWriters*wrng.Int63n(chaosLPNSpace/chaosWriters)
				data := make([]byte, ps)
				wrng.Read(data)
				id := tr.Attempt(lpn, data)
				c.mu.RLock()
				err := c.nodes[0].Write(lpn, data)
				c.mu.RUnlock()
				if err == nil {
					tr.Acked(lpn, id)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	quiesced := func(stage string) {
		c.mu.Lock()
		c.checkInvariants(tr, stage)
		c.mu.Unlock()
	}

	// --- Phase 0: warm up with ring replication traffic.
	c.waitFor("warmup writes", func() bool { return tr.Ops() >= chaosMinOps })

	// --- Phase 1: JOIN. Slot 3 enters; the reshape re-journals moved
	// blocks to their new owners while writes keep flowing.
	c.inRing[3] = true
	c.propose("join of R3")
	c.calmly("joined R3 hello", c.nodes[3].ConnectPeer)
	quiesced("after join")

	// --- Phase 2: LEAVE. A seed-picked backup departs. It is deliberately
	// NOT told (removed members are typically gone): it keeps running with
	// the stale layout and its late frames must bounce off everyone's
	// epoch gate, never land in a hold.
	gone := 1 + rng.Intn(3)
	c.inRing[gone] = false
	c.propose(fmt.Sprintf("leave of R%d", gone))
	// Drive client writes through the departed node: it still routes by
	// the old layout, so its forwards (and, once it degrades and its
	// prober revives a link, its resync pushes) carry the stale epoch and
	// must bounce off the survivors' epoch gate instead of landing in a
	// hold they no longer own.
	staleData := make([]byte, ps)
	c.waitFor("a stale-epoch frame to bounce", func() bool {
		_ = c.nodes[gone].Write(int64(rng.Intn(chaosLPNSpace)), staleData)
		var rejects int64
		for s := 0; s < ringSlots; s++ {
			if s != gone && c.nodes[s] != nil {
				rejects += c.nodes[s].Stats().EpochRejects
			}
		}
		return rejects > 0
	})
	quiesced("after leave")

	// --- Phase 3: crash-mid-resync on a remaining backup.
	var backups []int
	for s := 1; s < ringSlots; s++ {
		if c.inRing[s] {
			backups = append(backups, s)
		}
	}
	victim := backups[rng.Intn(len(backups))]
	c.crashBackupMidResync(victim)
	quiesced("after backup crash-mid-resync")

	// --- Phase 4: REJOIN the departed member (still running, still on the
	// stale epoch — the proposal must override it).
	c.inRing[gone] = true
	c.propose(fmt.Sprintf("rejoin of R%d", gone))
	c.calmly(fmt.Sprintf("rejoined R%d hello", gone), c.nodes[gone].ConnectPeer)
	quiesced("after rejoin")

	// --- Phase 5: PRIMARY crash. Its RAM (dirty buffer + flush pipeline)
	// is lost; the replacement reopens the same page store and recovers
	// the lost pages from every surviving holder's per-origin hold, newest
	// stamp winning across holders.
	c.mu.Lock()
	c.nodes[0].Crash()
	p2 := c.startNode(0, c.dir0)
	if err := p2.SetMembers(c.epoch, c.layoutMembers()); err != nil {
		c.t.Fatalf("seed %d: replacement primary rejected layout: %v", c.seed, err)
	}
	c.calmly("post-crash hello", p2.ConnectPeer)
	c.calmly("recover from ring", p2.RecoverFromPeer)
	p2.StartHeartbeat()
	c.nodes[0] = p2
	c.checkInvariants(tr, "after primary crash+recovery")
	c.mu.Unlock()

	// --- Wind down and verify.
	time.Sleep(150 * time.Millisecond)
	close(done)
	wg.Wait()

	quiesced("final state")

	// Read-back: the primary must serve a tracked value for every acked page.
	for _, lpn := range tr.Pages() {
		got, err := c.nodes[0].Read(lpn, 1)
		if err != nil {
			t.Fatalf("seed %d: final read of lpn %d: %v", seed, lpn, err)
		}
		if !tr.Valid(lpn, got) {
			t.Errorf("final read of lpn %d returned an untracked value; reproduce with CHAOS_SEED=%d", lpn, seed)
		}
	}
	for s, tap := range taps {
		for _, v := range tap.Violations() {
			t.Errorf("wire (net R%d): %s (reproduce with CHAOS_SEED=%d)", s, v, seed)
		}
	}
	if n := tr.Ops(); n < chaosMinOps {
		t.Errorf("only %d write attempts; the schedule must drive at least %d", n, chaosMinOps)
	}

	st := c.nodes[0].Stats()
	var rejects int64
	for s := 1; s < ringSlots; s++ {
		if c.nodes[s] != nil {
			rejects += c.nodes[s].Stats().EpochRejects
		}
	}
	t.Logf("ops=%d acked_pages=%d epoch=%d forwards=%d fwd_failures=%d failovers=%d membership_changes=%d peer_epoch_rejects=%d",
		tr.Ops(), len(tr.Pages()), c.epoch, st.Forwards, st.ForwardFailures, st.Failovers,
		st.MembershipChanges, rejects)
}

// TestChaosMembershipChurn runs the churn script under framing-preserving
// faults on three derived seeds (override the base with CHAOS_SEED); every
// seed must complete the full join/leave/crash-mid-resync/rejoin/primary-
// crash cycle with zero invariant violations.
func TestChaosMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	base := chaosSeed(t)
	for i := int64(0); i < 3; i++ {
		seed := base + i*1000
		t.Run(fmt.Sprintf("%d", seed), func(t *testing.T) { runChurn(t, seed) })
	}
}
