package check

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flashcoop/internal/cluster"
	"flashcoop/internal/faultfs"
)

// rotHeldRecords flips one payload byte in up to max live records of the
// v1 store files under dir whose LPNs the partner still backs in its RCT
// — damage the ring can provably repair. The record layout is pinned by
// DESIGN.md §15: a 16-byte file header, then 24-byte slot headers
// ([4B CRC][1B flags][3B zero][8B lpn BE][8B stamp BE]) each followed by
// a pageSize payload; a zero flags byte marks a live record.
func rotHeldRecords(t *testing.T, dir string, ps int, holder *cluster.LiveNode, max int) int {
	t.Helper()
	const hdrSize, slotHdr = 16, 24
	paths, err := filepath.Glob(filepath.Join(dir, "pagestore*"))
	if err != nil {
		t.Fatal(err)
	}
	rotted := 0
	for _, path := range paths {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		rs := int64(slotHdr + ps)
		rec := make([]byte, slotHdr)
		for off := int64(hdrSize); off+rs <= st.Size() && rotted < max; off += rs {
			if _, err := f.ReadAt(rec, off); err != nil {
				t.Fatal(err)
			}
			if rec[4] != 0 { // not a live record (free slot or crash debris)
				continue
			}
			lpn := int64(binary.BigEndian.Uint64(rec[8:16]))
			if lpn < 0 || !holder.RemoteContains(lpn) {
				continue
			}
			var b [1]byte
			f.ReadAt(b[:], off+slotHdr)
			b[0] ^= 0xFF
			if _, err := f.WriteAt(b[:], off+slotHdr); err != nil {
				t.Fatal(err)
			}
			rotted++
		}
		f.Close()
	}
	return rotted
}

// The disk-chaos drill is the storage-side sibling of the network chaos
// script: node A's page store runs over a faultfs.Injector, a crash-at-
// I/O-step hook power-cuts the store mid-eviction (unsynced writes land
// torn, partially, or not at all), and a replacement node must come back
// over the damaged files with zero checksum mismatches after scrub and
// ring repair — then a poisoned fsync must drive the pair to Degraded
// instead of acking unsyncable writes. The network stays clean: this
// drill isolates the storage fault model.
//
// A failing seed reruns with:
//
//	CHAOS_SEED=<seed> go test -run TestChaosTornWriteRepair ./internal/cluster/check

const diskChaosWriters = 4

func diskNodeConfig(name, addr, dir string, fs faultfs.FS) cluster.LiveConfig {
	return cluster.LiveConfig{
		Name:       name,
		ListenAddr: addr,
		Policy:     "lar",
		// Small buffer against the LPN space keeps evictions (and their
		// fsyncs — the injector's attack surface) flowing; RemotePages
		// covers the space so the RCT never sheds a backup for capacity.
		BufferPages:       48,
		RemotePages:       chaosLPNSpace * 2,
		Shards:            chaosShards(),
		EvictQueue:        4,
		SSD:               chaosSSD(),
		DataDir:           dir,
		FS:                fs,
		SyncWrites:        true, // unsynced overlay dies at crash; DiscardSafety demands the fsync boundary
		HeartbeatInterval: 25 * time.Millisecond,
		FailureThreshold:  2,
		CallTimeout:       250 * time.Millisecond,
	}
}

// TestChaosTornWriteRepair: torn write + crash + restart at three pinned
// seeds — scrub/repair must converge to zero checksum mismatches with
// every durability invariant intact, and the fsyncgate drill must degrade
// the node rather than ack writes it cannot persist.
func TestChaosTornWriteRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	base := chaosSeed(t)
	for _, seed := range []int64{base + 40, base + 1040, base + 2040} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDiskChaos(t, seed)
		})
	}
}

func runDiskChaos(t *testing.T, seed int64) {
	t.Logf("disk chaos seed %d (rerun: CHAOS_SEED=%d go test -run TestChaosTornWriteRepair ./internal/cluster/check)", seed, seed)
	dirA := t.TempDir()
	inj := faultfs.New(seed)
	a, err := cluster.NewLiveNode(diskNodeConfig("A", "127.0.0.1:0", dirA, inj))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.NewLiveNode(diskNodeConfig("B", "127.0.0.1:0", t.TempDir(), nil))
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	defer b.Close()
	addrB := b.Addr()
	a.SetPeer(addrB)
	b.SetPeer(a.Addr())
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	a.StartHeartbeat()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: timed out waiting for %s", seed, what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// --- Phase 0: writers hammer A while its store takes real I/O.
	tr := NewTracker()
	ps := a.Device().PageSize()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < diskChaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x9E3779B9))
			for {
				select {
				case <-done:
					return
				default:
				}
				lpn := int64(w) + diskChaosWriters*rng.Int63n(chaosLPNSpace/diskChaosWriters)
				data := make([]byte, ps)
				rng.Read(data)
				id := tr.Attempt(lpn, data)
				if err := a.Write(lpn, data); err == nil {
					tr.Acked(lpn, id)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	waitFor("warmup writes", func() bool { return tr.Ops() >= chaosMinOps })
	waitFor("evictions reaching the store", func() bool { return a.Stats().Persists >= 1 })

	// --- Phase 1: power-cut the store mid-traffic. The injector crashes
	// INLINE in the hook — the goroutine that crossed the step holds no
	// file lock yet, and resolving the overlay at that exact I/O step is
	// what catches a dirty eviction batch mid-fsync (torn writes). The
	// node crash runs elsewhere: it waits on the very goroutines the hook
	// is running on. Injector strictly first, so the node's shutdown
	// fsync cannot retroactively save data a real power cut takes.
	crashed := make(chan struct{})
	inj.CrashAt(inj.Steps()+25, func() {
		inj.Crash()
		go func() {
			a.Crash()
			close(crashed)
		}()
	})
	select {
	case <-crashed:
	case <-time.After(15 * time.Second):
		t.Fatalf("seed %d: crash-at-step hook never fired", seed)
	}
	close(done)
	wg.Wait()

	// On top of whatever the seeded crash tore, deterministically rot a
	// few durable records whose pages B still backs — every seed then
	// exercises detect → queue → repair end to end, not just the lucky
	// ones whose overlay resolved to a torn prefix.
	rotted := rotHeldRecords(t, dirA, ps, b, 3)
	if rotted == 0 {
		t.Fatalf("seed %d: no durable record with a live backup to rot", seed)
	}

	// --- Phase 2: a replacement node reopens the damaged store (fresh
	// injector, nothing armed — a rebooted host gets a fresh page cache)
	// and recovers the lost dirty pages from B's RCT.
	inj2 := faultfs.New(seed + 7)
	a2, err := cluster.NewLiveNode(diskNodeConfig("A2", "127.0.0.1:0", dirA, inj2))
	if err != nil {
		t.Fatalf("seed %d: reopen over damaged store: %v", seed, err)
	}
	a2.SetPeer(addrB)
	b.SetPeer(a2.Addr())
	if err := a2.ConnectPeer(); err != nil {
		t.Fatalf("seed %d: post-crash hello: %v", seed, err)
	}
	if err := a2.RecoverFromPeer(); err != nil {
		t.Fatalf("seed %d: recover from peer: %v", seed, err)
	}
	a2.StartHeartbeat()

	// Every record the crash tore must converge to intact: recovery and
	// the repair loop heal from B, and a full scrub must come back clean.
	waitFor("scrub+repair to converge to zero mismatches", func() bool {
		if a2.RepairQueueLen() != 0 {
			return false
		}
		_, corrupt := a2.ScrubOnce()
		return corrupt == 0
	})

	// Durability invariants and read-back against the full write history.
	for _, v := range append(Durability(tr, a2, b), DiscardSafety(tr, a2, b)...) {
		t.Errorf("after crash+repair: %s (reproduce with CHAOS_SEED=%d)", v, seed)
	}
	if t.Failed() {
		t.Fatalf("invariant violations after crash+repair; reproduce with CHAOS_SEED=%d", seed)
	}
	st2 := a2.Stats()
	if st2.CorruptSlots < int64(rotted) {
		t.Errorf("CorruptSlots = %d, want >= %d rotted records detected; reproduce with CHAOS_SEED=%d",
			st2.CorruptSlots, rotted, seed)
	}
	if st2.RepairedPages < 1 {
		t.Errorf("RepairedPages = %d, want >= 1; reproduce with CHAOS_SEED=%d", st2.RepairedPages, seed)
	}
	for _, lpn := range tr.Pages() {
		got, err := a2.Read(lpn, 1)
		if err != nil {
			t.Fatalf("seed %d: final read of lpn %d: %v", seed, lpn, err)
		}
		if !tr.Valid(lpn, got) {
			t.Errorf("final read of lpn %d returned an untracked value; reproduce with CHAOS_SEED=%d", lpn, seed)
		}
	}

	// --- Phase 3: fsyncgate. One failed fsync must poison its section,
	// degrade the pair, and reject writes to that section instead of
	// acking data the kernel already dropped.
	inj2.FailFsyncs(1)
	for i := int64(0); i < chaosLPNSpace; i++ {
		data := make([]byte, ps)
		a2.Write(i, data) //nolint:errcheck // driving evictions into the armed fsync
	}
	a2.FlushAll() //nolint:errcheck // the poisoning flush itself may carry the error
	waitFor("fsync poison to latch", func() bool { return a2.Stats().FsyncPoisoned >= 1 })
	waitFor("poisoned node to degrade", func() bool { return !a2.PeerAlive() })
	poisonSeen := false
	for i := int64(0); i < chaosLPNSpace; i++ {
		if err := a2.Write(i, make([]byte, ps)); errors.Is(err, cluster.ErrSyncPoisoned) {
			poisonSeen = true
			break
		}
	}
	if !poisonSeen {
		t.Fatalf("seed %d: no write to the poisoned section was rejected", seed)
	}

	st := a2.Stats()
	t.Logf("ops=%d acked_pages=%d corrupt=%d repaired=%d scrubs=%d poisoned=%d stale_skips=%d store_steps=%d",
		tr.Ops(), len(tr.Pages()), st.CorruptSlots, st.RepairedPages, st.ScrubPasses,
		st.FsyncPoisoned, st.StaleRecoverySkips, inj.Steps())
	a2.Close() //nolint:errcheck // close on a poisoned store surfaces the latched error by design
}
