package check

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flashcoop/internal/cluster"
)

// SeqChecker is a faultnet.Tap that validates invariant 3 on the wire:
// per client connection, request seqs are never reused and every response
// answers exactly one outstanding request. It reassembles the byte stream
// each side actually put on the wire into frames, so it must only be
// installed on schedules whose faults preserve framing (latency, resets);
// drop/dup/truncate deliberately corrupt the stream and would garble
// reassembly, not the protocol.
//
// Strict monotonicity of request seqs on the wire is NOT asserted: the
// peer client assigns seqs under its lock but enqueues onto the send queue
// outside it, so two concurrent calls may cross — a benign reorder the
// reader side matches by seq. Reuse of a seq, or a response nobody asked
// for, is never benign.
type SeqChecker struct {
	mu         sync.Mutex
	conns      map[uint64]*seqConn
	violations []Violation
}

type seqConn struct {
	reqBuf, respBuf []byte
	seen            map[uint64]bool // request seqs observed on this conn
	answered        map[uint64]bool // response seqs observed on this conn
	broken          bool            // framing lost; stop parsing this conn
}

// NewSeqChecker builds an empty checker; install it with Network.SetTap.
func NewSeqChecker() *SeqChecker {
	return &SeqChecker{conns: make(map[uint64]*seqConn)}
}

// Observe implements faultnet.Tap. Only client (dialed) connections are
// tracked: their outbound bytes are requests, inbound bytes responses.
func (s *SeqChecker) Observe(connID uint64, dialed, outbound bool, b []byte) {
	if !dialed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.conns[connID]
	if c == nil {
		c = &seqConn{seen: make(map[uint64]bool), answered: make(map[uint64]bool)}
		s.conns[connID] = c
	}
	if c.broken {
		return
	}
	if outbound {
		c.reqBuf = append(c.reqBuf, b...)
	} else {
		c.respBuf = append(c.respBuf, b...)
	}
	s.drainLocked(connID, c, outbound)
}

// drainLocked parses every complete frame buffered for one direction,
// sniffing v1 (length-prefixed) versus v2 (magic + CRC) per frame the
// same way cluster.ReadFrame does; a v2 frame's checksum is verified
// against the bytes that actually crossed the wire. A trailing
// incomplete frame is left in place — the connection may simply have
// died mid-frame, which is not a protocol violation.
func (s *SeqChecker) drainLocked(connID uint64, c *seqConn, outbound bool) {
	buf := &c.respBuf
	if outbound {
		buf = &c.reqBuf
	}
	for {
		if len(*buf) < 4 {
			return
		}
		hdr := 4
		var n uint32
		if (*buf)[0] == cluster.FrameMagicV2 {
			if (*buf)[1] != cluster.FrameVersion2 || (*buf)[2] != 0 || (*buf)[3] != 0 {
				s.violations = append(s.violations, Violation{
					Invariant: "seq", LPN: -1,
					Detail: fmt.Sprintf("conn %d: bad v2 frame header % x", connID, (*buf)[:4]),
				})
				c.broken = true
				return
			}
			if len(*buf) < cluster.FrameHdrV2Len {
				return
			}
			hdr = cluster.FrameHdrV2Len
			n = binary.BigEndian.Uint32((*buf)[4:8])
		} else {
			n = binary.BigEndian.Uint32(*buf)
		}
		if n > cluster.MaxFrameBytes || n < 9 {
			s.violations = append(s.violations, Violation{
				Invariant: "seq", LPN: -1,
				Detail: fmt.Sprintf("conn %d: implausible frame length %d", connID, n),
			})
			c.broken = true
			return
		}
		if len(*buf) < hdr+int(n) {
			return
		}
		body := (*buf)[hdr : hdr+int(n)]
		if hdr == cluster.FrameHdrV2Len {
			if want := binary.BigEndian.Uint32((*buf)[8:12]); cluster.ChecksumV2(body) != want {
				s.violations = append(s.violations, Violation{
					Invariant: "seq", LPN: -1,
					Detail: fmt.Sprintf("conn %d: v2 frame checksum mismatch", connID),
				})
				c.broken = true
				return
			}
		}
		seq := binary.BigEndian.Uint64(body[1:9])
		if outbound {
			if c.seen[seq] {
				s.violations = append(s.violations, Violation{
					Invariant: "seq", LPN: -1,
					Detail: fmt.Sprintf("conn %d: request seq %d reused", connID, seq),
				})
			}
			c.seen[seq] = true
		} else {
			switch {
			case !c.seen[seq]:
				s.violations = append(s.violations, Violation{
					Invariant: "seq", LPN: -1,
					Detail: fmt.Sprintf("conn %d: response for unknown seq %d", connID, seq),
				})
			case c.answered[seq]:
				s.violations = append(s.violations, Violation{
					Invariant: "seq", LPN: -1,
					Detail: fmt.Sprintf("conn %d: duplicate response for seq %d", connID, seq),
				})
			default:
				c.answered[seq] = true
			}
		}
		*buf = (*buf)[hdr+int(n):]
	}
}

// Violations returns every breach recorded so far.
func (s *SeqChecker) Violations() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Violation, len(s.violations))
	copy(out, s.violations)
	return out
}
