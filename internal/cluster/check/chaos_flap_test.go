package check

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"flashcoop/internal/faultnet"
)

// flapCycles reports how many partition/heal cycles the link-flap run
// drives: default 4, overridable with CHAOS_FLAPS (CI uses a shorter
// budget for the -race smoke). The acceptance floor is 3.
func flapCycles(t *testing.T) int {
	cycles := 4
	if s := os.Getenv("CHAOS_FLAPS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("bad CHAOS_FLAPS %q", s)
		}
		cycles = v
	}
	return cycles
}

// TestChaosLinkFlap exercises the peer lifecycle state machine under a
// flapping link: repeated asymmetric partitions cut A→B while 8 writers
// run, so A fails over, writes through (journaling every page), then — on
// each heal — probes, resyncs the journal into B's RCT, and resumes
// cooperative buffering. The durability and discard-safety invariants are
// checked after every heal and at the end; the old silent-rejoin bug
// (peerAlive flipped back by one good heartbeat, skipping resync) fails
// this test on the first cycle.
func TestChaosLinkFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	seed := chaosSeed(t) + 200
	cycles := flapCycles(t)
	t.Logf("chaos seed %d (rerun: CHAOS_SEED=%d go test -run %s ./internal/cluster/check)", seed, seed, t.Name())

	tap := NewSeqChecker()
	c := &chaosPair{
		t:    t,
		seed: seed,
		netA: faultnet.New(seed),
		netB: faultnet.New(seed + 1),
		// Framing-preserving faults so the seq tap stays meaningful; the
		// flapping itself is the failure mode under test.
		faults: faultnet.Faults{
			DelayProb: 0.2,
			DelayMax:  2 * time.Millisecond,
			ResetProb: 0.01,
		},
		dirA: t.TempDir(),
	}
	c.netA.SetTap(tap)
	c.netB.SetTap(tap)

	c.a = c.startNode(c.nodeConfig("A", "127.0.0.1:0", c.dirA, c.netA))
	c.b = c.startNode(c.nodeConfig("B", "127.0.0.1:0", t.TempDir(), c.netB))
	c.addrA, c.addrB = c.a.Addr(), c.b.Addr()
	c.a.SetPeer(c.addrB)
	c.b.SetPeer(c.addrA)
	c.calmly("initial hello", c.a.ConnectPeer)
	c.a.StartHeartbeat()
	defer func() {
		c.a.Close()
		c.b.Close()
	}()

	c.netA.SetFaults(c.faults)
	c.netB.SetFaults(c.faults)

	// Same writer scheme as runChaos: disjoint LPN slices, random
	// payloads, ack tracked only on success — a write shed with
	// ErrOverloaded is an unacked attempt like any other failure.
	tr := NewTracker()
	ps := c.a.Device().PageSize()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < chaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*0x9E3779B9))
			for {
				select {
				case <-done:
					return
				default:
				}
				lpn := int64(w) + chaosWriters*rng.Int63n(chaosLPNSpace/chaosWriters)
				data := make([]byte, ps)
				rng.Read(data)
				id := tr.Attempt(lpn, data)
				c.mu.RLock()
				err := c.a.Write(lpn, data)
				c.mu.RUnlock()
				if err == nil {
					tr.Acked(lpn, id)
				}
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	c.waitFor("warmup writes", func() bool { return tr.Ops() >= 100 })

	for cycle := 1; cycle <= cycles; cycle++ {
		rejoinsBefore := c.a.Stats().Rejoins

		// Cut A→B only (asymmetric: B never notices). Forwards fail, A
		// degrades and journals its write-throughs.
		c.netA.SetPartitioned(true)
		c.waitFor(fmt.Sprintf("cycle %d: A to fail over", cycle), func() bool {
			return !c.a.PeerAlive()
		})
		time.Sleep(150 * time.Millisecond) // degraded writes pile into the journal

		// Heal. A must probe, stream the journal, and only then rejoin.
		c.netA.SetPartitioned(false)
		c.waitFor(fmt.Sprintf("cycle %d: resynced rejoin", cycle), func() bool {
			return c.a.PeerAlive() && c.a.Stats().Rejoins > rejoinsBefore
		})
		time.Sleep(100 * time.Millisecond) // cooperative traffic resumes

		// Quiesce the writers (they hold RLock per op) and verify the
		// invariants hold after this heal.
		c.mu.Lock()
		c.checkInvariants(tr, fmt.Sprintf("after heal %d", cycle))
		c.mu.Unlock()
	}

	close(done)
	wg.Wait()
	c.checkInvariants(tr, "final state")

	// Read-back: every acked page serves a tracked value (no lost acked
	// writes, no stale rollbacks).
	for _, lpn := range tr.Pages() {
		got, err := c.a.Read(lpn, 1)
		if err != nil {
			t.Fatalf("seed %d: final read of lpn %d: %v", seed, lpn, err)
		}
		if !tr.Valid(lpn, got) {
			t.Errorf("final read of lpn %d returned an untracked value; reproduce with CHAOS_SEED=%d", lpn, seed)
		}
	}
	for _, v := range tap.Violations() {
		t.Errorf("wire: %s (reproduce with CHAOS_SEED=%d)", v, seed)
	}

	st := c.a.Stats()
	if st.Rejoins < int64(cycles) {
		t.Errorf("Rejoins = %d, want >= %d (one resynced rejoin per heal)", st.Rejoins, cycles)
	}
	if st.ResyncedPages < 1 {
		t.Errorf("ResyncedPages = %d: degraded writes were never re-replicated", st.ResyncedPages)
	}
	if st.Failovers < int64(cycles) {
		t.Errorf("Failovers = %d, want >= %d", st.Failovers, cycles)
	}
	t.Logf("ops=%d acked_pages=%d failovers=%d suspects=%d probes=%d probe_failures=%d rejoins=%d resynced=%d resync_failures=%d journal_drops=%d overloads=%d net_steps=%d",
		tr.Ops(), len(tr.Pages()), st.Failovers, st.Suspects, st.Probes, st.ProbeFailures,
		st.Rejoins, st.ResyncedPages, st.ResyncFailures, st.JournalDrops, st.Overloads, c.netA.Steps())
}
