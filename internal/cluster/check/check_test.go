package check

import (
	"bytes"
	"encoding/binary"
	"testing"

	"flashcoop/internal/cluster"
)

// fakeNode is a hand-rolled NodeState for unit tests.
type fakeNode struct {
	dirty   map[int64][]byte
	remote  map[int64][]byte
	durable map[int64][]byte
}

func newFakeNode() *fakeNode {
	return &fakeNode{
		dirty:   map[int64][]byte{},
		remote:  map[int64][]byte{},
		durable: map[int64][]byte{},
	}
}

func (f *fakeNode) SnapshotDirty() map[int64][]byte  { return f.dirty }
func (f *fakeNode) SnapshotRemote() map[int64][]byte { return f.remote }
func (f *fakeNode) DurableGet(lpn int64) []byte      { return f.durable[lpn] }

func TestDurabilityInvariant(t *testing.T) {
	tr := NewTracker()
	v1 := []byte("version-one")
	id := tr.Attempt(7, v1)
	tr.Acked(7, id)

	local, peer := newFakeNode(), newFakeNode()

	// No copy anywhere: violation.
	if vs := Durability(tr, local, peer); len(vs) != 1 || vs[0].LPN != 7 {
		t.Fatalf("want 1 violation on lpn 7, got %v", vs)
	}

	// A copy in any of the three places satisfies the invariant.
	local.dirty[7] = v1
	if vs := Durability(tr, local, peer); len(vs) != 0 {
		t.Fatalf("dirty copy not accepted: %v", vs)
	}
	delete(local.dirty, 7)
	peer.remote[7] = v1
	if vs := Durability(tr, local, peer); len(vs) != 0 {
		t.Fatalf("peer RCT copy not accepted: %v", vs)
	}
	peer.remote = map[int64][]byte{}
	local.durable[7] = v1
	if vs := Durability(tr, local, peer); len(vs) != 0 {
		t.Fatalf("persisted copy not accepted: %v", vs)
	}

	// A copy holding garbage instead of any tracked value: violation.
	local.durable[7] = []byte("garbage-val")
	if vs := Durability(tr, local, peer); len(vs) != 1 {
		t.Fatalf("untracked value not flagged: %v", vs)
	}

	// A crashed peer (nil) must not hide the loss.
	local.durable = map[int64][]byte{}
	peer.remote[7] = v1
	if vs := Durability(tr, local, nil); len(vs) != 1 {
		t.Fatalf("nil peer should drop the RCT copy: %v", vs)
	}
}

func TestDurabilityAcceptsPendingOverwrite(t *testing.T) {
	tr := NewTracker()
	v1, v2 := []byte("acked-v1"), []byte("inflight-v2")
	id := tr.Attempt(3, v1)
	tr.Acked(3, id)
	tr.Attempt(3, v2) // never acked: raced an error, may have applied

	local, peer := newFakeNode(), newFakeNode()
	local.dirty[3] = v2 // the failed overwrite is what actually landed
	if vs := Durability(tr, local, peer); len(vs) != 0 {
		t.Fatalf("open attempt's value must be legal: %v", vs)
	}
}

func TestDiscardSafetyInvariant(t *testing.T) {
	tr := NewTracker()
	v := []byte("flushed")
	id := tr.Attempt(11, v)
	tr.Acked(11, id)

	local, peer := newFakeNode(), newFakeNode()

	// Backup gone, buffer clean, store has it: the legal post-flush state.
	local.durable[11] = v
	if vs := DiscardSafety(tr, local, peer); len(vs) != 0 {
		t.Fatalf("legal discard flagged: %v", vs)
	}

	// Backup still held: store may lag, no violation.
	local.durable = map[int64][]byte{}
	peer.remote[11] = v
	if vs := DiscardSafety(tr, local, peer); len(vs) != 0 {
		t.Fatalf("live backup should excuse the store: %v", vs)
	}

	// Backup gone, buffer clean, store empty: the discard ran ahead of
	// durability.
	peer.remote = map[int64][]byte{}
	vs := DiscardSafety(tr, local, peer)
	if len(vs) != 1 || vs[0].LPN != 11 {
		t.Fatalf("unsafe discard not flagged: %v", vs)
	}
}

// frame marshals one message with the real wire encoding.
func frame(t *testing.T, m *cluster.Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cluster.WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSeqCheckerCleanStream(t *testing.T) {
	s := NewSeqChecker()
	req := frame(t, &cluster.Message{Type: cluster.MsgHeartbeat, Seq: 1})
	resp := frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 1})
	// Split delivery across byte boundaries to exercise reassembly.
	s.Observe(1, true, true, req[:3])
	s.Observe(1, true, true, req[3:])
	s.Observe(1, true, false, resp[:7])
	s.Observe(1, true, false, resp[7:])
	// Out-of-order completion of pipelined calls is fine.
	s.Observe(1, true, true, frame(t, &cluster.Message{Type: cluster.MsgHeartbeat, Seq: 3}))
	s.Observe(1, true, true, frame(t, &cluster.Message{Type: cluster.MsgHeartbeat, Seq: 2}))
	s.Observe(1, true, false, frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 3}))
	s.Observe(1, true, false, frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 2}))
	// Accept-side traffic is ignored.
	s.Observe(2, false, true, []byte("not a frame at all"))
	if vs := s.Violations(); len(vs) != 0 {
		t.Fatalf("clean stream flagged: %v", vs)
	}
}

func TestSeqCheckerFlagsReuseAndOrphans(t *testing.T) {
	s := NewSeqChecker()
	s.Observe(1, true, true, frame(t, &cluster.Message{Type: cluster.MsgHeartbeat, Seq: 5}))
	s.Observe(1, true, true, frame(t, &cluster.Message{Type: cluster.MsgHeartbeat, Seq: 5}))
	s.Observe(1, true, false, frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 5}))
	s.Observe(1, true, false, frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 5}))
	s.Observe(1, true, false, frame(t, &cluster.Message{Type: cluster.MsgHeartbeatAck, Seq: 99}))
	vs := s.Violations()
	if len(vs) != 3 {
		t.Fatalf("want reuse + dup-response + orphan = 3 violations, got %v", vs)
	}
}

func TestSeqCheckerFlagsImplausibleFrame(t *testing.T) {
	s := NewSeqChecker()
	var junk [4]byte
	binary.BigEndian.PutUint32(junk[:], cluster.MaxFrameBytes+1)
	s.Observe(1, true, true, junk[:])
	if vs := s.Violations(); len(vs) != 1 {
		t.Fatalf("oversized frame length not flagged: %v", vs)
	}
	// The conn is broken from here on; further bytes must not panic or
	// add noise.
	s.Observe(1, true, true, []byte{1, 2, 3})
	if vs := s.Violations(); len(vs) != 1 {
		t.Fatalf("broken conn kept parsing: %v", vs)
	}
}
