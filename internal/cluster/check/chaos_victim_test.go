package check

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"flashcoop/internal/cluster"
	"flashcoop/internal/faultfs"
)

// The victim-tier chaos drill proves the flash victim cache is STRICTLY a
// cache: a power cut that tears the store mid-eviction also takes every
// victim-log entry with it, and nothing the cluster guarantees may depend
// on those entries surviving. The drill churns admissible (warm, reused)
// evictions through the tier until it is demonstrably serving reads, then
// crashes the node at a seeded I/O step, restarts over the damaged
// directory, and checks that (a) the reborn tier starts cold — zero hits
// served before new admissions — (b) every durability and discard-safety
// invariant holds against the full write history, and (c) the tier earns
// fresh admissions afterwards, so losing it cost performance and nothing
// else.
//
// A failing seed reruns with:
//
//	CHAOS_SEED=<seed> go test -run TestChaosVictimTierIsStrictlyCache ./internal/cluster/check

const victimChaosWriters = 4

func victimNodeConfig(name, addr, dir string, fs faultfs.FS) cluster.LiveConfig {
	cfg := diskNodeConfig(name, addr, dir, fs)
	// An 8x8-page tier over a 128-page LPN space: big enough that warm
	// evictions accumulate and segments seal, small enough that whole-
	// segment reclamation churns too.
	cfg.VictimSegments = 8
	cfg.VictimSegmentPages = 8
	return cfg
}

// TestChaosVictimTierIsStrictlyCache: crash + restart at three pinned
// seeds — the victim log's contents are forfeit at every crash, and no
// invariant may notice.
func TestChaosVictimTierIsStrictlyCache(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	base := chaosSeed(t)
	for _, seed := range []int64{base + 70, base + 1070, base + 2070} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runVictimChaos(t, seed)
		})
	}
}

// victimChurn drives one writer's share of admissible eviction traffic:
// half-block (4-page) writes issued twice back-to-back, so each block
// evicts Warm with demonstrated reuse (LAR counts a multi-page write as
// ONE access) and clears the tier's admission gate. Every page write is
// tracked; block ownership is disjoint per writer, so per-page ack order
// is sound for the Tracker.
func victimChurn(t *testing.T, a *cluster.LiveNode, tr *Tracker, w int, rng *rand.Rand, done <-chan struct{}) {
	ps := a.Device().PageSize()
	blocks := chaosLPNSpace / 8
	for {
		select {
		case <-done:
			return
		default:
		}
		blk := int64(w) + victimChaosWriters*rng.Int63n(int64(blocks)/victimChaosWriters)
		for pass := 0; pass < 2; pass++ {
			data := make([]byte, 4*ps)
			rng.Read(data)
			base := blk * 8
			ids := make([]uint64, 4)
			for i := 0; i < 4; i++ {
				ids[i] = tr.Attempt(base+int64(i), data[i*ps:(i+1)*ps])
			}
			if err := a.Write(base, data); err == nil {
				for i := 0; i < 4; i++ {
					tr.Acked(base+int64(i), ids[i])
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func runVictimChaos(t *testing.T, seed int64) {
	t.Logf("victim chaos seed %d (rerun: CHAOS_SEED=%d go test -run TestChaosVictimTierIsStrictlyCache ./internal/cluster/check)", seed, seed)
	dirA := t.TempDir()
	inj := faultfs.New(seed)
	a, err := cluster.NewLiveNode(victimNodeConfig("A", "127.0.0.1:0", dirA, inj))
	if err != nil {
		t.Fatal(err)
	}
	if !a.VictimEnabled() {
		a.Close()
		t.Fatal("victim tier not enabled")
	}
	b, err := cluster.NewLiveNode(victimNodeConfig("B", "127.0.0.1:0", t.TempDir(), nil))
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	defer b.Close()
	addrB := b.Addr()
	a.SetPeer(addrB)
	b.SetPeer(a.Addr())
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	a.StartHeartbeat()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: timed out waiting for %s", seed, what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// --- Phase 0: admissible churn until the tier is demonstrably live —
	// admissions flowing AND at least one read served from the log (the
	// probe reader sweeps the space; misses fall through harmlessly).
	tr := NewTracker()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < victimChaosWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			victimChurn(t, a, tr, w, rand.New(rand.NewSource(seed+int64(w)*0x9E3779B9)), done)
		}(w)
	}
	waitFor("warmup writes", func() bool { return tr.Ops() >= chaosMinOps })
	waitFor("victim admissions", func() bool { return a.Stats().VictimAdmits >= 8 })
	var probe int64
	waitFor("a victim-served read", func() bool {
		probe++
		a.Read(probe%chaosLPNSpace, 1) //nolint:errcheck // probing for tier hits, value unchecked mid-churn
		return a.Stats().VictimHits >= 1
	})

	// --- Phase 1: power-cut mid-traffic (same inline-injector discipline
	// as the disk drill: overlay resolves first, node crash elsewhere).
	// Whatever the victim log held — including the sealed-segment mirror
	// file's unsynced tail — is gone.
	crashed := make(chan struct{})
	inj.CrashAt(inj.Steps()+25, func() {
		inj.Crash()
		go func() {
			a.Crash()
			close(crashed)
		}()
	})
	select {
	case <-crashed:
	case <-time.After(15 * time.Second):
		t.Fatalf("seed %d: crash-at-step hook never fired", seed)
	}
	close(done)
	wg.Wait()
	preCrash := a.Stats()

	// --- Phase 2: restart over the damaged directory with the tier still
	// configured. The victim log is never read back: the reborn tier MUST
	// start cold, and recovery + repair must converge from B alone.
	inj2 := faultfs.New(seed + 7)
	a2, err := cluster.NewLiveNode(victimNodeConfig("A2", "127.0.0.1:0", dirA, inj2))
	if err != nil {
		t.Fatalf("seed %d: reopen over damaged store: %v", seed, err)
	}
	a2.SetPeer(addrB)
	b.SetPeer(a2.Addr())
	if err := a2.ConnectPeer(); err != nil {
		t.Fatalf("seed %d: post-crash hello: %v", seed, err)
	}
	if err := a2.RecoverFromPeer(); err != nil {
		t.Fatalf("seed %d: recover from peer: %v", seed, err)
	}
	a2.StartHeartbeat()
	waitFor("repair to converge", func() bool {
		if a2.RepairQueueLen() != 0 {
			return false
		}
		_, corrupt := a2.ScrubOnce()
		return corrupt == 0
	})

	// Read back the full write history BEFORE any new admissions: every
	// page must carry a tracked value served without a single victim hit —
	// a hit here would mean pre-crash log contents leaked into the reborn
	// tier.
	for _, lpn := range tr.Pages() {
		got, err := a2.Read(lpn, 1)
		if err != nil {
			t.Fatalf("seed %d: post-crash read of lpn %d: %v", seed, lpn, err)
		}
		if !tr.Valid(lpn, got) {
			t.Errorf("post-crash read of lpn %d returned an untracked value; reproduce with CHAOS_SEED=%d", lpn, seed)
		}
	}
	st2 := a2.Stats()
	if st2.VictimHits != 0 {
		t.Errorf("reborn victim tier served %d hits before any admission — stale log contents leaked; reproduce with CHAOS_SEED=%d",
			st2.VictimHits, seed)
	}
	for _, v := range append(Durability(tr, a2, b), DiscardSafety(tr, a2, b)...) {
		t.Errorf("after crash+restart: %s (reproduce with CHAOS_SEED=%d)", v, seed)
	}
	if t.Failed() {
		t.Fatalf("victim-tier invariant violations; reproduce with CHAOS_SEED=%d", seed)
	}

	// --- Phase 3: the tier must come back to life — fresh churn earns
	// fresh admissions, proving the crash cost cache contents only.
	done2 := make(chan struct{})
	var wg2 sync.WaitGroup
	for w := 0; w < victimChaosWriters; w++ {
		wg2.Add(1)
		go func(w int) {
			defer wg2.Done()
			victimChurn(t, a2, tr, w, rand.New(rand.NewSource(seed+0x5bd1e995+int64(w))), done2)
		}(w)
	}
	waitFor("post-restart victim admissions", func() bool { return a2.Stats().VictimAdmits >= 8 })
	close(done2)
	wg2.Wait()

	st := a2.Stats()
	t.Logf("ops=%d acked_pages=%d pre_crash_admits=%d pre_crash_hits=%d post_admits=%d repaired=%d store_steps=%d",
		tr.Ops(), len(tr.Pages()), preCrash.VictimAdmits, preCrash.VictimHits,
		st.VictimAdmits, st.RepairedPages, inj.Steps())
	a2.Close()
}
