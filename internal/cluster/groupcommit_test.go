package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flushCountStore is a pageStore stub that counts flushes and can fail.
type flushCountStore struct {
	memStore
	flushes atomic.Int64
	fail    atomic.Bool
}

var errStubFlush = errors.New("stub flush failure")

func (s *flushCountStore) flush() error {
	s.flushes.Add(1)
	if s.fail.Load() {
		return errStubFlush
	}
	return nil
}

// TestGroupCommitCompletesWaiters checks every concurrent sync() caller
// completes with its own section's outcome and each section is fsynced
// at least once.
func TestGroupCommitCompletesWaiters(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	var stats LiveStats
	gc := newGroupCommit(0, 16, stop, &stats)
	var wg sync.WaitGroup
	wg.Add(1)
	go gc.run(&wg)

	good := &flushCountStore{}
	bad := &flushCountStore{}
	bad.fail.Store(true)
	var callers sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 4; i++ {
		callers.Add(1)
		go func() { defer callers.Done(); errc <- gc.sync(good, 2) }()
		callers.Add(1)
		go func() { defer callers.Done(); errc <- gc.sync(bad, 3) }()
	}
	callers.Wait()
	close(errc)
	var oks, fails int
	for err := range errc {
		switch {
		case err == nil:
			oks++
		case errors.Is(err, errStubFlush):
			fails++
		default:
			t.Fatalf("unexpected sync error: %v", err)
		}
	}
	if oks != 4 || fails != 4 {
		t.Fatalf("got %d ok / %d failed, want 4/4", oks, fails)
	}
	if good.flushes.Load() == 0 || bad.flushes.Load() == 0 {
		t.Fatal("a section was never flushed")
	}
	if atomic.LoadInt64(&stats.GroupCommitBatches) == 0 {
		t.Fatal("no batches counted")
	}
	if got := atomic.LoadInt64(&stats.PagesSynced); got != 4*2+4*3 {
		t.Fatalf("PagesSynced = %d, want 20", got)
	}
}

// TestGroupCommitCoalesces checks that requests for one section pending
// at the same time share fsync passes instead of each paying its own:
// with an interval window holding the pass open, N waiters must complete
// with far fewer than N flushes.
func TestGroupCommitCoalesces(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	var stats LiveStats
	gc := newGroupCommit(20*time.Millisecond, 64, stop, &stats)
	var wg sync.WaitGroup
	wg.Add(1)
	go gc.run(&wg)

	sec := &flushCountStore{}
	const waiters = 16
	var callers sync.WaitGroup
	for i := 0; i < waiters; i++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			if err := gc.sync(sec, 1); err != nil {
				t.Errorf("sync: %v", err)
			}
		}()
	}
	callers.Wait()
	if got := sec.flushes.Load(); got >= waiters/2 {
		t.Fatalf("%d flushes for %d coalescable waiters; the pass is not batching", got, waiters)
	}
}

// slowFlushStore stretches each flush so passes overlap queued requests.
type slowFlushStore struct {
	flushCountStore
	delay time.Duration
}

func (s *slowFlushStore) flush() error {
	time.Sleep(s.delay)
	return s.flushCountStore.flush()
}

// TestGroupCommitSelfClockedCoalesces checks the in-flight window batches
// without an interval: while one pass's slow sync runs, arriving requests
// gather into the next pass instead of each dispatching its own.
func TestGroupCommitSelfClockedCoalesces(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	var stats LiveStats
	gc := newGroupCommit(0, 64, stop, &stats)
	var wg sync.WaitGroup
	wg.Add(1)
	go gc.run(&wg)

	sec := &slowFlushStore{delay: 3 * time.Millisecond}
	const waiters = 12
	var callers sync.WaitGroup
	for i := 0; i < waiters; i++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			if err := gc.sync(sec, 1); err != nil {
				t.Errorf("sync: %v", err)
			}
		}()
	}
	callers.Wait()
	if got := sec.flushes.Load(); got >= waiters*2/3 {
		t.Fatalf("%d flushes for %d overlapping waiters; the in-flight window is not batching", got, waiters)
	}
}

// TestGroupCommitBarrier checks a pass spanning several barrier-capable
// sections settles with one whole-filesystem barrier: every waiter
// completes durable and every section's sync generation advances.
func TestGroupCommitBarrier(t *testing.T) {
	if !hasSyncFS {
		t.Skip("platform has no syncfs; barrier passes cannot run")
	}
	dir := t.TempDir()
	stop := make(chan struct{})
	defer close(stop)
	var stats LiveStats
	gc := newGroupCommit(10*time.Millisecond, 64, stop, &stats)
	var wg sync.WaitGroup
	wg.Add(1)
	go gc.run(&wg)

	const pageSize = 64
	secs := make([]*fileStore, 3)
	for i := range secs {
		s, err := newFileStoreAt(dir, shardStoreName(i), pageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		defer s.close()
		s.barrier = true
		if err := s.put(int64(i), make([]byte, pageSize), 1); err != nil {
			t.Fatal(err)
		}
		secs[i] = s
	}
	var callers sync.WaitGroup
	for _, s := range secs {
		for j := 0; j < 2; j++ {
			callers.Add(1)
			go func(s *fileStore) {
				defer callers.Done()
				if err := gc.sync(s, 1); err != nil {
					t.Errorf("sync: %v", err)
				}
			}(s)
		}
	}
	callers.Wait()
	if atomic.LoadInt64(&stats.FsBarriers) == 0 {
		t.Fatal("no pass settled via the filesystem barrier")
	}
	for i, s := range secs {
		if target, ok := s.syncTarget(); ok {
			t.Fatalf("section %d still pending generation %d after the barrier", i, target)
		}
	}
}

// TestGroupCommitStop checks shutdown fails waiters conservatively with
// errNodeClosing instead of hanging them or reporting durability.
func TestGroupCommitStop(t *testing.T) {
	stop := make(chan struct{})
	var stats LiveStats
	gc := newGroupCommit(0, 4, stop, &stats)
	// No run() goroutine: requests queue until the channel fills, exactly
	// the race a node shutdown can hit.
	sec := &flushCountStore{}
	done := make(chan error, 8)
	for i := 0; i < 6; i++ {
		go func() { done <- gc.sync(sec, 1) }()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	gc.drainFailed()
	for i := 0; i < 6; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, errNodeClosing) {
				t.Fatalf("got %v, want errNodeClosing", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("sync caller hung through shutdown")
		}
	}
}
