package cluster

import (
	"sync"
	"testing"
	"time"

	"flashcoop/internal/transport"
)

// inprocPair brings up a connected live pair on the in-process channel
// transport: no loopback TCP, but the exact same framing bytes.
func inprocPair(t *testing.T, mutate func(cfg *LiveConfig)) (*LiveNode, *LiveNode) {
	t.Helper()
	inet := transport.NewNet()
	mk := func(name, peer string) *LiveNode {
		cfg := LiveConfig{
			Name: name, ListenAddr: ":0", PeerAddr: peer,
			BufferPages: 64, RemotePages: 256, SSD: liveSSD(),
			HeartbeatInterval: 20 * time.Millisecond,
			CallTimeout:       500 * time.Millisecond,
			Dialer:            inet.Dial,
			Listener:          inet.Listen,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		n, err := NewLiveNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a := mk("a", "")
	b := mk("b", a.Addr())
	a.SetPeer(b.Addr())
	if err := a.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestInprocPairRoundTrip drives replicated writes over the in-process
// transport and reads them back from both the writer and the backup's
// RCT, proving the v2 writev path works end to end off the kernel.
func TestInprocPairRoundTrip(t *testing.T) {
	a, b := inprocPair(t, nil)
	ps := a.Device().PageSize()
	for lpn := int64(0); lpn < 32; lpn++ {
		if err := a.Write(lpn, page(byte(lpn+1), ps)); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	for lpn := int64(0); lpn < 32; lpn++ {
		got, err := a.Read(lpn, 1)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if got[0] != byte(lpn+1) {
			t.Fatalf("lpn %d read back %#x", lpn, got[0])
		}
	}
	if st := a.Stats(); st.Forwards == 0 {
		t.Fatal("no forwards recorded; the pair is not replicating")
	}
	if got := b.RemoteLen(); got == 0 {
		t.Fatal("backup holds no pages after replicated writes")
	}
}

// TestInprocPairConcurrent hammers the pair from several writers so the
// batched writev path (many frames per syscall-equivalent) and the
// in-process channels run under -race.
func TestInprocPairConcurrent(t *testing.T) {
	a, _ := inprocPair(t, nil)
	ps := a.Device().PageSize()
	const writers, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lpn := int64(w*per + i)
				if err := a.Write(lpn, page(byte(w+1), ps)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInprocPairGroupCommit runs the pair with a durable, group-committed
// store: writes must push batches through the sync coordinator (the
// counters prove the coalesced path ran, pages-per-sync ≥ 1) and survive
// a close/reopen of the store directory.
func TestInprocPairGroupCommit(t *testing.T) {
	dir := t.TempDir()
	a, _ := inprocPair(t, func(cfg *LiveConfig) {
		if cfg.Name == "a" {
			cfg.BufferPages = 16 // tiny buffer: every write evicts
			cfg.Shards = 4
			cfg.EvictQueue = 2
			cfg.DataDir = dir
			cfg.SyncWrites = true
		}
	})
	ps := a.Device().PageSize()
	for lpn := int64(0); lpn < 96; lpn++ {
		if err := a.Write(lpn, page(byte(lpn%250+1), ps)); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().GroupCommitBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("group-commit coordinator never ran a pass")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := a.Stats()
	if st.PagesSynced < st.GroupCommitBatches {
		t.Fatalf("pages per sync below 1: %d pages over %d batches", st.PagesSynced, st.GroupCommitBatches)
	}
}
