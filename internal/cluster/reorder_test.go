package cluster

import (
	"bytes"
	"testing"

	"flashcoop/internal/core"
	"flashcoop/internal/ssd"
	"flashcoop/internal/stream"
)

// bareNode builds a LiveNode with just the RCT side wired up — no
// listener, no background goroutines — the same idiom the resync fuzzer
// uses, so handle() can be driven directly.
func bareNode(t *testing.T) *LiveNode {
	t.Helper()
	dev, err := ssd.New(liveSSD())
	if err != nil {
		t.Fatal(err)
	}
	n := &LiveNode{
		dev:         dev,
		pageSize:    dev.PageSize(),
		remote:      core.NewRemoteStore(128),
		remoteData:  make(map[int64][]byte),
		remoteStamp: make(map[int64]uint64),
	}
	ps := dev.PageSize()
	n.pagePool.New = func() any { return make([]byte, ps) }
	return n
}

// overWire pushes a message through the v2 encoder and the version-sniffing
// reader, so the handler sees exactly what a partner would receive —
// including the trailing stream/pressure extension.
func overWire(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, m); err != nil {
		t.Fatalf("WriteFrameV2: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

// TestTaggedDiscardReorder races a write-forward against a discard for the
// same page across the v2 wire, in both arrival orders and with both
// tagged and untagged discard frames. The stamps decide, never the
// arrival order or the tags: a backup newer than the discard's stamp must
// survive either ordering, and a discard at or above the backup's stamp
// must drop it either way. Stream tags on a discard are advisory routing
// metadata — they must round-trip the wire intact and change nothing
// about the receiver's keep/drop decision.
func TestTaggedDiscardReorder(t *testing.T) {
	const lpn = int64(7)

	cases := []struct {
		name                     string
		writeStamp               uint64
		discardStamp             uint64
		tagged                   bool
		wantAfterWD, wantAfterDW bool // backup survives write→discard / discard→write
	}{
		{"newer-backup-untagged", 7, 5, false, true, true},
		{"newer-backup-tagged", 7, 5, true, true, true},
		{"discard-covers-untagged", 7, 7, false, false, true},
		{"discard-covers-tagged", 7, 7, true, false, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			orders := []struct {
				name string
				want bool
			}{
				{"write-then-discard", tc.wantAfterWD},
				{"discard-then-write", tc.wantAfterDW},
			}
			for _, ord := range orders {
				n := bareNode(t)
				ps := n.dev.PageSize()
				payload := bytes.Repeat([]byte{0xA7}, ps)

				write := &Message{
					Type: MsgWriteFwd, Seq: 1,
					LPNs: []int64{lpn}, Stamps: []uint64{tc.writeStamp},
					Data: payload,
				}
				discard := &Message{
					Type: MsgDiscard, Seq: 2,
					LPNs: []int64{lpn}, Stamps: []uint64{tc.discardStamp},
				}
				if tc.tagged {
					discard.Streams = []stream.Stream{stream.Cold}
					discard.Pressure = 0.5
				}

				wireDiscard := overWire(t, discard)
				if tc.tagged {
					if len(wireDiscard.Streams) != 1 || wireDiscard.Streams[0] != stream.Cold {
						t.Fatalf("discard tags lost on the wire: %+v", wireDiscard.Streams)
					}
					if wireDiscard.Pressure != 0.5 {
						t.Fatalf("discard pressure lost on the wire: %v", wireDiscard.Pressure)
					}
				}
				msgs := []*Message{overWire(t, write), wireDiscard}
				if ord.name == "discard-then-write" {
					msgs[0], msgs[1] = msgs[1], msgs[0]
				}
				for _, m := range msgs {
					if resp := n.handle(m); resp.Type == MsgError {
						t.Fatalf("%s: handler rejected %v: %s", ord.name, m.Type, resp.Err)
					}
				}

				_, haveData := n.remoteData[lpn]
				if haveData != ord.want {
					t.Fatalf("%s: backup present = %v, want %v", ord.name, haveData, ord.want)
				}
				if ord.want {
					if st := n.remoteStamp[lpn]; st != tc.writeStamp {
						t.Fatalf("%s: surviving stamp %d, want %d", ord.name, st, tc.writeStamp)
					}
					if !bytes.Equal(n.remoteData[lpn], payload) {
						t.Fatalf("%s: surviving backup payload corrupted", ord.name)
					}
				}
			}
		})
	}
}

// TestTaggedDiscardMatchesUntagged applies the same multi-page discard
// twice — once bare, once carrying a full set of stream tags — against
// identically loaded nodes and requires byte-identical RCT outcomes: the
// receiver's stamp guard must be oblivious to the tags.
func TestTaggedDiscardMatchesUntagged(t *testing.T) {
	lpns := []int64{3, 4, 5, 6}
	load := func(t *testing.T) *LiveNode {
		n := bareNode(t)
		ps := n.dev.PageSize()
		if resp := n.handle(&Message{
			Type: MsgWriteFwd, Seq: 1, LPNs: lpns,
			Stamps: []uint64{10, 2, 7, 5},
			Data:   bytes.Repeat([]byte{0x33}, len(lpns)*ps),
		}); resp.Type == MsgError {
			t.Fatalf("load: %s", resp.Err)
		}
		return n
	}
	discard := &Message{Type: MsgDiscard, Seq: 2, LPNs: lpns, Stamps: []uint64{5, 5, 7, 9}}
	tagged := &Message{
		Type: MsgDiscard, Seq: 2, LPNs: lpns, Stamps: []uint64{5, 5, 7, 9},
		Streams:  []stream.Stream{stream.Hot, stream.Warm, stream.Cold, stream.Seq},
		Pressure: 0.9,
	}
	plain, strm := load(t), load(t)
	plain.handle(overWire(t, discard))
	strm.handle(overWire(t, tagged))

	for _, lpn := range lpns {
		_, pHave := plain.remoteData[lpn]
		_, sHave := strm.remoteData[lpn]
		if pHave != sHave {
			t.Errorf("lpn %d: untagged kept=%v, tagged kept=%v — tags changed the outcome", lpn, pHave, sHave)
		}
		if plain.remoteStamp[lpn] != strm.remoteStamp[lpn] {
			t.Errorf("lpn %d: stamp divergence untagged=%d tagged=%d", lpn, plain.remoteStamp[lpn], strm.remoteStamp[lpn])
		}
	}
	// And the expected concrete outcome: stamps 10 and 7 beat or miss the
	// discard (10>5 survives, 7==7 drops), 2<=5 and 5<=9 drop.
	if _, ok := plain.remoteData[3]; !ok {
		t.Error("lpn 3 (stamp 10 > discard 5) should have survived")
	}
	for _, lpn := range []int64{4, 5, 6} {
		if _, ok := plain.remoteData[lpn]; ok {
			t.Errorf("lpn %d should have been discarded", lpn)
		}
	}
}
