package cluster

import "fmt"

// PeerState is one stage of the partner lifecycle. The pair moves through
// an explicit state machine instead of a peerAlive boolean, because
// re-admission after an outage is a protocol step, not a flag flip: pages
// written through degraded mode must be re-replicated (Resyncing) before
// cooperative buffering may resume, or the "every acked dirty page has a
// remote backup" invariant is silently violated after any transient
// partition.
//
//	          hb miss                    probe ok
//	Healthy ─────────► Suspect          Probing ────► Resyncing
//	   │                 │  ▲              ▲  │            │
//	   │ forward fail    │  └──────────────┘  │            │ journal
//	   │                 │   probe failed     │            │ drained
//	   │     threshold   ▼                    │            ▼
//	   └──────────────► Degraded ─────────────┘         Healthy
//	                        ▲      probe attempt
//	                        └── Resyncing (mid-stream failure)
type PeerState uint32

// Peer lifecycle states. StateDegraded is the zero value: a node starts
// alone (write-through) until ConnectPeer or a probe completes a resync.
const (
	StateDegraded  PeerState = iota // partner lost (or never joined): write-through
	StateHealthy                    // cooperative buffering active
	StateSuspect                    // heartbeat misses below FailureThreshold
	StateProbing                    // failed over; re-dialing the partner with backoff
	StateResyncing                  // partner answered; streaming the degraded-write journal
)

// String names the state (lower-case, used in STATS/HEALTH output).
func (s PeerState) String() string {
	switch s {
	case StateDegraded:
		return "degraded"
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateProbing:
		return "probing"
	case StateResyncing:
		return "resyncing"
	}
	return fmt.Sprintf("PeerState(%d)", uint32(s))
}

// legalEdges is the full transition relation. Anything not listed here is
// a bug in the event methods below, caught by mustTo.
var legalEdges = map[PeerState]map[PeerState]bool{
	StateHealthy:   {StateSuspect: true, StateDegraded: true},
	StateSuspect:   {StateHealthy: true, StateDegraded: true, StateProbing: true},
	StateDegraded:  {StateProbing: true},
	StateProbing:   {StateResyncing: true, StateSuspect: true},
	StateResyncing: {StateHealthy: true, StateDegraded: true},
}

// lcAction tells the LiveNode what side effect an event demands. The
// machine itself is pure (no I/O, no locks, no goroutines); the node
// executes actions outside its mutex.
type lcAction int

const (
	lcNone      lcAction = iota
	lcFailover           // a live cooperative session was lost: flush dirty data, start probing
	lcKickProbe          // contact while failed over: wake the prober now instead of waiting out its backoff
)

// lifecycle is the pure peer state machine. All access is guarded by the
// owning LiveNode's mutex.
type lifecycle struct {
	state     PeerState
	missed    int // consecutive failed contacts (heartbeats or probes)
	threshold int // misses tolerated before Suspect collapses to Degraded
	// failedOver distinguishes the two flavors of Suspect: before failover
	// the cooperative session is still live (a lone heartbeat miss must not
	// stop replication), after failover a heartbeat success alone must NOT
	// re-enter cooperative mode — only a completed resync may.
	failedOver bool
}

// to performs one transition, rejecting anything outside legalEdges.
func (l *lifecycle) to(next PeerState) error {
	if !legalEdges[l.state][next] {
		return fmt.Errorf("cluster: illegal peer transition %v -> %v", l.state, next)
	}
	l.state = next
	return nil
}

// mustTo is to() for the event methods, whose transitions are legal by
// construction; a failure here is a programming error.
func (l *lifecycle) mustTo(next PeerState) {
	if err := l.to(next); err != nil {
		panic(err)
	}
}

// alive reports whether cooperative buffering is on: Healthy, or Suspect
// with the session still live (pre-failover misses don't stop forwarding).
func (l *lifecycle) alive() bool {
	return l.state == StateHealthy || (l.state == StateSuspect && !l.failedOver)
}

// heartbeatOK handles a successful heartbeat round trip.
func (l *lifecycle) heartbeatOK() lcAction {
	l.missed = 0
	switch l.state {
	case StateSuspect:
		if l.failedOver {
			// The partner answers again but cooperative mode stays off
			// until the degraded-write journal is resynced; hand the
			// recovery to the prober (the silent-rejoin bug was exactly
			// flipping alive here).
			return lcKickProbe
		}
		l.mustTo(StateHealthy)
		return lcNone
	case StateDegraded:
		return lcKickProbe
	default:
		// Healthy: nothing to do. Probing/Resyncing: the prober owns
		// progress; a concurrent heartbeat must not interfere.
		return lcNone
	}
}

// heartbeatMiss handles a failed heartbeat round trip.
func (l *lifecycle) heartbeatMiss() lcAction {
	switch l.state {
	case StateHealthy:
		l.missed++
		l.mustTo(StateSuspect)
		if l.missed >= l.threshold {
			return l.failoverLocked()
		}
		return lcNone
	case StateSuspect:
		l.missed++
		if l.missed < l.threshold {
			return lcNone
		}
		if l.failedOver {
			// Already failed over (e.g. a probe regressed us to Suspect);
			// no second flush is owed.
			l.mustTo(StateDegraded)
			return lcNone
		}
		return l.failoverLocked()
	default:
		// Degraded/Probing/Resyncing: misses carry no new information.
		return lcNone
	}
}

// forwardFailed handles a backup forward failing while cooperative mode
// was on — hard evidence, so Suspect's tolerance does not apply.
func (l *lifecycle) forwardFailed() lcAction {
	switch l.state {
	case StateHealthy:
		l.mustTo(StateDegraded)
		l.failedOver = true
		return lcFailover
	case StateSuspect:
		if l.failedOver {
			return lcNone
		}
		return l.failoverLocked()
	default:
		return lcNone
	}
}

// failoverLocked collapses a live session to Degraded. Callers have
// established the session was live (failedOver false).
func (l *lifecycle) failoverLocked() lcAction {
	if l.state != StateDegraded {
		l.mustTo(StateDegraded)
	}
	l.failedOver = true
	return lcFailover
}

// probeStart moves Degraded or post-failover Suspect into Probing.
func (l *lifecycle) probeStart() { l.mustTo(StateProbing) }

// probeOK records a probe round trip: the partner is reachable, begin
// streaming the degraded-write journal.
func (l *lifecycle) probeOK() { l.mustTo(StateResyncing) }

// probeFailed regresses Probing to Suspect (hysteresis: one answered probe
// does not have to mean a stable link) and, once the miss budget is spent,
// to Degraded so the prober falls back to its backoff cadence.
func (l *lifecycle) probeFailed() {
	l.missed++
	l.mustTo(StateSuspect)
	if l.missed >= l.threshold {
		l.mustTo(StateDegraded)
	}
}

// resyncDone completes the rejoin: every degraded write is re-replicated,
// cooperative buffering resumes.
func (l *lifecycle) resyncDone() {
	l.mustTo(StateHealthy)
	l.missed = 0
	l.failedOver = false
}

// resyncFailed aborts a mid-stream resync (reset, timeout, stall) back to
// Degraded; the journal keeps the unsent pages for the next attempt.
func (l *lifecycle) resyncFailed() { l.mustTo(StateDegraded) }
