package cluster

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flashcoop/internal/faultfs"
)

// fillPage builds a pageSize payload with a recognizable fill byte.
func fillPage(ps int, fill byte) []byte {
	p := make([]byte, ps)
	for i := range p {
		p[i] = fill
	}
	return p
}

// v1SlotOff computes a record field offset in a closed v1 store file.
func v1SlotOff(ps int, slot int64) int64 {
	return storeHeaderSize + slot*int64(slotHeaderSize+ps)
}

// A legacy v0 file (headerless, un-checksummed 16-byte slot headers) is
// migrated to v1 on open: live records survive with their stamps, free
// slots are compacted away, and the reopened file carries the v1 header.
func TestFileStoreV0Migration(t *testing.T) {
	dir := t.TempDir()
	const ps = 128
	path := filepath.Join(dir, fileStoreName)

	// Hand-build a v0 file: slot 0 live (lpn 7), slot 1 free, slot 2 live
	// (lpn 3).
	rsV0 := slotHeaderV0 + ps
	raw := make([]byte, 3*rsV0)
	writeV0 := func(slot int, lpn int64, stamp uint64, fill byte) {
		rec := raw[slot*rsV0 : (slot+1)*rsV0]
		binary.BigEndian.PutUint64(rec[:8], uint64(lpn))
		binary.BigEndian.PutUint64(rec[8:16], stamp)
		copy(rec[slotHeaderV0:], fillPage(ps, fill))
	}
	writeV0(0, 7, 20, 0xA7)
	writeV0(1, freeSlotMarker, 0, 0x00)
	writeV0(2, 3, 9, 0xB3)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatalf("open (migrate): %v", err)
	}
	if got := s.get(7); got == nil || got[0] != 0xA7 {
		t.Fatalf("lpn 7 lost in migration")
	}
	if got := s.get(3); got == nil || got[0] != 0xB3 {
		t.Fatalf("lpn 3 lost in migration")
	}
	if st, ok := s.getStamp(7); !ok || st != 20 {
		t.Fatalf("lpn 7 stamp = %d, %v", st, ok)
	}
	if s.pages() != 2 || s.maxStamp() != 20 {
		t.Fatalf("pages=%d maxStamp=%d after migration", s.pages(), s.maxStamp())
	}
	if s.corruptCount() != 0 {
		t.Fatalf("migration flagged %d corrupt slots", s.corruptCount())
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// The migrated file is v1: magic header, free slot compacted away.
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int64(storeHeaderSize + 2*(slotHeaderSize+ps))
	if int64(len(out)) != wantSize {
		t.Fatalf("migrated size = %d, want %d (free slot compacted)", len(out), wantSize)
	}
	if string(out[:4]) != string(storeMagic[:]) || out[4] != storeVersion {
		t.Fatalf("migrated header = % x", out[:8])
	}
	// No stale temp file left behind.
	if _, err := os.Stat(path + ".migrate"); !os.IsNotExist(err) {
		t.Fatalf("migrate temp file left behind: %v", err)
	}

	// And it reopens cleanly as v1.
	s2, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	if got := s2.get(3); got == nil || got[0] != 0xB3 {
		t.Fatalf("lpn 3 lost after reopen")
	}
	s2.close()
}

// Opening with a different page size than the file was built with must
// fail loudly, via the v1 header.
func TestFileStoreHeaderRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := newFileStore(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	s.put(1, fillPage(256, 1), 1)
	s.close()
	if _, err := newFileStore(dir, 512, false); err == nil {
		t.Fatal("reopen with wrong page size succeeded")
	}
	// Unknown future version is refused, not misparsed.
	path := filepath.Join(dir, fileStoreName)
	raw, _ := os.ReadFile(path)
	raw[4] = storeVersion + 1
	os.WriteFile(path, raw, 0o644)
	if _, err := newFileStore(dir, 256, false); err == nil {
		t.Fatal("reopen with future version succeeded")
	}
}

// A payload flipped while the store was closed is caught by the open-time
// scan: counted, its LPN queued as a repair suspect, the slot freed and
// scrubbed clean so the next open is quiet.
func TestFileStoreLoadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	const ps = 64
	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := s.put(10+i, fillPage(ps, byte(0xC0+i)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of slot 1 (lpn 11).
	path := filepath.Join(dir, fileStoreName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := v1SlotOff(ps, 1) + slotHeaderSize + 5
	var b [1]byte
	f.ReadAt(b[:], off)
	b[0] ^= 0x40
	f.WriteAt(b[:], off)
	f.Close()

	s, err = newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.corruptCount() != 1 {
		t.Fatalf("corruptCount = %d, want 1", s.corruptCount())
	}
	if sus := s.takeCorrupt(); len(sus) != 1 || sus[0] != 11 {
		t.Fatalf("suspects = %v, want [11]", sus)
	}
	if s.takeCorrupt() != nil {
		t.Fatal("takeCorrupt not drained")
	}
	if s.get(11) != nil {
		t.Fatal("corrupt record served")
	}
	if s.get(10) == nil || s.get(12) == nil {
		t.Fatal("intact neighbors lost")
	}
	// The freed slot is reusable and the store works on.
	if err := s.put(99, fillPage(ps, 0x99), 50); err != nil {
		t.Fatal(err)
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}

	// The slot was rewritten clean: a fresh open reports nothing.
	s, err = newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.corruptCount() != 0 {
		t.Fatalf("reopen still reports %d corrupt slots", s.corruptCount())
	}
	s.close()
}

// Corruption that lands while the store is open is caught by get (counted
// once, reported once through onCorrupt, healed by a fresh put) and by
// the scrubber.
func TestFileStoreRuntimeCorruptionAndScrub(t *testing.T) {
	dir := t.TempDir()
	const ps = 64
	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var reported []int64
	s.onCorrupt = func(lpn int64) { reported = append(reported, lpn) }
	for i := int64(0); i < 4; i++ {
		if err := s.put(i, fillPage(ps, byte(i+1)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	// Rot slot 2 (lpn 2) behind the store's back.
	f, err := os.OpenFile(filepath.Join(dir, fileStoreName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := v1SlotOff(ps, 2) + slotHeaderSize
	var b [1]byte
	f.ReadAt(b[:], off)
	b[0] ^= 0x01
	f.WriteAt(b[:], off)
	f.Close()

	if s.get(2) != nil {
		t.Fatal("rotted record served")
	}
	if s.get(2) != nil { // second read: no double count
		t.Fatal("rotted record served")
	}
	if s.corruptCount() != 1 || len(reported) != 1 || reported[0] != 2 {
		t.Fatalf("count=%d reported=%v, want 1/[2]", s.corruptCount(), reported)
	}
	if s.verify(2) || !s.verify(1) {
		t.Fatal("verify disagrees with get")
	}
	// The index entry survives — its stamp still ranks repair candidates.
	if st, ok := s.getStamp(2); !ok || st != 3 {
		t.Fatalf("stamp of corrupt record = %d, %v; want 3, true", st, ok)
	}

	// A full scrub reports the known-bad record without recounting it.
	next, checked, bad := s.scrubRange(0, 1024)
	if next != 0 || checked != 4 {
		t.Fatalf("scrub = (next %d, checked %d), want wrap over 4 slots", next, checked)
	}
	if len(bad) != 1 || bad[0] != 2 || s.corruptCount() != 1 || len(reported) != 1 {
		t.Fatalf("scrub bad=%v count=%d reported=%v", bad, s.corruptCount(), reported)
	}

	// A fresh put heals the slot in place.
	if err := s.put(2, fillPage(ps, 0xFF), 40); err != nil {
		t.Fatal(err)
	}
	if got := s.get(2); got == nil || got[0] != 0xFF {
		t.Fatal("healed record unreadable")
	}
	if _, _, bad := s.scrubRange(0, 1024); len(bad) != 0 {
		t.Fatalf("scrub after heal still reports %v", bad)
	}
}

// The scrubber also detects rot that get() has not touched yet, reporting
// it through onCorrupt exactly once across passes.
func TestFileStoreScrubDetectsColdRot(t *testing.T) {
	dir := t.TempDir()
	const ps = 64
	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	var reported []int64
	s.onCorrupt = func(lpn int64) { reported = append(reported, lpn) }
	for i := int64(0); i < 8; i++ {
		s.put(i, fillPage(ps, byte(i+1)), uint64(i+1))
	}
	f, _ := os.OpenFile(filepath.Join(dir, fileStoreName), os.O_RDWR, 0)
	for _, slot := range []int64{1, 6} {
		off := v1SlotOff(ps, slot) + 16 // stamp field: header rot, CRC catches it
		var b [1]byte
		f.ReadAt(b[:], off)
		b[0] ^= 0x80
		f.WriteAt(b[:], off)
	}
	f.Close()

	// Walk in small batches to exercise the cursor.
	var bad []int64
	cursor, passes := int64(0), 0
	for {
		next, _, b := s.scrubRange(cursor, 3)
		bad = append(bad, b...)
		cursor = next
		if next == 0 {
			passes++
			if passes == 2 {
				break
			}
		}
	}
	// Two passes: each finds both rotted slots, but only the first pass
	// counts and reports them.
	if len(bad) != 4 || s.corruptCount() != 2 || len(reported) != 2 {
		t.Fatalf("bad=%v count=%d reported=%v", bad, s.corruptCount(), reported)
	}
}

// A trailing partial record — a torn append at crash — is normalized into
// a free slot at open and reused by the next put.
func TestFileStoreTornTailRecord(t *testing.T) {
	dir := t.TempDir()
	const ps = 64
	s, err := newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	s.put(1, fillPage(ps, 1), 1)
	s.put(2, fillPage(ps, 2), 2)
	s.close()

	path := filepath.Join(dir, fileStoreName)
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	st, _ := f.Stat()
	f.WriteAt(fillPage((slotHeaderSize+ps)/2, 0xEE), st.Size()) // half a record
	f.Close()

	s, err = newFileStore(dir, ps, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if s.corruptCount() != 1 || s.pages() != 2 {
		t.Fatalf("count=%d pages=%d after torn tail", s.corruptCount(), s.pages())
	}
	sizeBefore, _ := s.f.Size()
	if err := s.put(3, fillPage(ps, 3), 3); err != nil {
		t.Fatal(err)
	}
	sizeAfter, _ := s.f.Size()
	if sizeAfter != sizeBefore {
		t.Fatalf("put after torn tail grew the file %d -> %d, want freed-slot reuse", sizeBefore, sizeAfter)
	}
}

// A failed fsync permanently poisons the section: the error is typed,
// latched, reported once through onPoison, and every later put/flush
// fails fast instead of pretending a retry can make the data durable.
func TestFileStorePoisonLatch(t *testing.T) {
	dir := t.TempDir()
	const ps = 64
	inj := faultfs.New(31)
	s, err := newFileStoreFS(inj, dir, "s.dat", ps, true)
	if err != nil {
		t.Fatal(err)
	}
	var hooks []error
	s.onPoison = func(err error) { hooks = append(hooks, err) }
	if err := s.put(1, fillPage(ps, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.flush(); err != nil {
		t.Fatalf("healthy flush: %v", err)
	}

	inj.FailFsyncs(1)
	if err := s.put(2, fillPage(ps, 2), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.flush(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("poisoning flush = %v, want ErrSyncPoisoned", err)
	}
	if len(hooks) != 1 || !errors.Is(hooks[0], ErrSyncPoisoned) {
		t.Fatalf("onPoison hooks = %v, want one typed error", hooks)
	}
	if !s.storePoisoned() {
		t.Fatal("poison flag not latched")
	}
	// Everything mutating fails fast with the same typed error — no
	// lying retry (the injector's next fsync would "succeed").
	if err := s.flush(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("flush retry = %v, want latched poison", err)
	}
	if err := s.put(3, fillPage(ps, 3), 3); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("put = %v, want latched poison", err)
	}
	if err := s.putRun([]int64{4}, [][]byte{fillPage(ps, 4)}, []uint64{4}); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("putRun = %v, want latched poison", err)
	}
	if err := s.remove(1); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("remove = %v, want latched poison", err)
	}
	if s.barrierReady() {
		t.Fatal("poisoned section claims barrier readiness")
	}
	if _, ok := s.syncTarget(); ok {
		t.Fatal("poisoned section offers a sync target")
	}
	if len(hooks) != 1 {
		t.Fatalf("onPoison fired %d times, want once", len(hooks))
	}
	// Reads still work — the surviving records stay readable.
	if got := s.get(1); got == nil || got[0] != 1 {
		t.Fatal("read on poisoned section lost data")
	}
	if err := s.close(); !errors.Is(err, ErrSyncPoisoned) {
		t.Fatalf("close = %v, want poison surfaced", err)
	}
}
