package cluster

import (
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned by LiveNode.Write when the node sheds the
// write: no admission slot (or forward-queue space) freed up within
// WriteDeadline. The write was not acknowledged; the client may retry.
// Shedding with a typed error keeps overload from cascading into
// unbounded queues and multi-second tail latencies.
var ErrOverloaded = errors.New("cluster: overloaded, write shed")

// breaker is a consecutive-slow-call circuit breaker on the forward path.
// Forward frames acked faster than threshold reset it; `window` slow acks
// in a row report a trip (exactly once per saturation episode), which the
// node turns into a lifecycle failover: a partner that technically
// answers but has let the inflight window saturate is treated like a dead
// one — degrade, shed load to the local SSD, and let the prober + resync
// bring the pair back when it recovers.
type breaker struct {
	threshold int64 // nanoseconds; <=0 disables
	window    int32
	slow      int32 // consecutive slow acks (atomic)
}

// observe records one successful forward frame's service time and reports
// whether the breaker just tripped.
func (b *breaker) observe(nanos int64) bool {
	if b.threshold <= 0 {
		return false
	}
	if nanos < b.threshold {
		atomic.StoreInt32(&b.slow, 0)
		return false
	}
	return atomic.AddInt32(&b.slow, 1) == b.window
}

func (b *breaker) reset() { atomic.StoreInt32(&b.slow, 0) }
