package cluster

import (
	"sort"
	"sync/atomic"
	"time"

	"flashcoop/internal/stream"
)

// Storage-integrity runtime: this file owns the node-side half of the
// checksummed page store — queueing corrupt pages for repair from ring
// holders (MsgRepair/MsgRepairResp), the background scrubber that walks
// store slots re-verifying checksums, and the fsync-poison watcher that
// drives the lifecycle to Degraded when a store section can no longer
// sync (see ErrSyncPoisoned in pagestore.go).

const (
	// scrubBatchSlots bounds how many records one scrub step verifies
	// under the store lock.
	scrubBatchSlots = 128
	// repairRetryInterval paces retries for queued repairs whose holders
	// were unreachable (or not yet connected) on the previous sweep.
	repairRetryInterval = 250 * time.Millisecond
)

// storeVerify reports whether lpn's durable record is intact; stores
// without integrity metadata (memStore) always report intact.
func storeVerify(s pageStore, lpn int64) bool {
	if v, ok := s.(storeVerifier); ok {
		return v.verify(lpn)
	}
	return true
}

// initIntegrity wires the store's corruption/poison hooks into the node
// and starts the repair, poison-watcher, and (if configured) scrubber
// goroutines. It must run before the evictors and the serve loop start:
// the hooks fire from flush/get deep inside persist critical sections.
func (n *LiveNode) initIntegrity() {
	n.repairSet = make(map[int64]struct{})
	n.repairKick = make(chan struct{}, 1)
	ss, _ := n.store.(*shardedStore)
	var subs []*fileStore
	if ss != nil {
		subs = ss.fileSubs()
	}
	if len(subs) == 0 {
		return // in-memory store: nothing to corrupt, poison, or scrub
	}
	// The poison hook can fire under persistMu + a shard lock (a degraded
	// write-through's flush), and degrading the lifecycle takes n.mu and
	// calls FlushAll — so propagation MUST be asynchronous through this
	// channel or it would deadlock on the locks its caller holds.
	n.poisonCh = make(chan error, len(subs))
	for _, sub := range subs {
		sub.onCorrupt = n.noteCorrupt
		sub.onPoison = n.notePoisoned
	}
	// Records that failed verification during the open-time scan: the
	// stores already counted them; mirror the total and queue the ones
	// whose self-described LPN survived as repair candidates.
	if ct, ok := n.store.(corruptTracker); ok {
		atomic.StoreInt64(&n.stats.CorruptSlots, ct.corruptCount())
		n.queueRepair(ct.takeCorrupt())
	}
	n.wg.Add(2)
	go n.poisonLoop()
	go n.repairLoop()
	if n.cfg.ScrubInterval > 0 {
		n.wg.Add(1)
		go n.scrubLoop(subs)
	}
}

// noteCorrupt is the store's onCorrupt hook: count it and queue the page
// for repair from its ring holders.
func (n *LiveNode) noteCorrupt(lpn int64) {
	atomic.AddInt64(&n.stats.CorruptSlots, 1)
	n.queueRepair([]int64{lpn})
}

// notePoisoned is the store's onPoison hook (fires once per section). It
// only records and signals; the heavy lifting happens on poisonLoop's
// goroutine because the hook may run under persist locks.
func (n *LiveNode) notePoisoned(err error) {
	atomic.AddInt64(&n.stats.FsyncPoisoned, 1)
	n.poisonedAny.Store(true)
	select {
	case n.poisonCh <- err:
	default:
	}
}

// queueRepair adds pages to the dedup'd repair queue and wakes the
// repair goroutine.
func (n *LiveNode) queueRepair(lpns []int64) {
	if len(lpns) == 0 {
		return
	}
	n.repairMu.Lock()
	for _, lpn := range lpns {
		n.repairSet[lpn] = struct{}{}
	}
	n.repairMu.Unlock()
	select {
	case n.repairKick <- struct{}{}:
	default:
	}
}

// clearRepair removes lpn from the repair queue, reporting whether it was
// queued — the signal recovery uses to count an applied backup as a
// repair.
func (n *LiveNode) clearRepair(lpn int64) bool {
	n.repairMu.Lock()
	_, ok := n.repairSet[lpn]
	if ok {
		delete(n.repairSet, lpn)
	}
	n.repairMu.Unlock()
	return ok
}

// RepairQueueLen reports how many pages are waiting for ring repair.
func (n *LiveNode) RepairQueueLen() int {
	n.repairMu.Lock()
	defer n.repairMu.Unlock()
	return len(n.repairSet)
}

// poisonLoop turns fsync-poison events into lifecycle Degraded: a node
// that cannot make its store durable must stop acking cooperative writes
// (the poisoned sections already fail puts), and failing the links over
// keeps every existing backup protected at its holders until an operator
// replaces the medium or restarts the node.
func (n *LiveNode) poisonLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case <-n.poisonCh:
			n.degradeForPoison()
		}
	}
}

// degradeForPoison feeds every link the same event a failed forward
// would: Healthy links fail over (flush what still can be flushed, keep
// journaling), already-degraded ones stay put.
func (n *LiveNode) degradeForPoison() {
	for _, l := range n.linksSnapshot() {
		n.mu.Lock()
		if l.removed {
			n.mu.Unlock()
			continue
		}
		act := l.lc.forwardFailed()
		n.syncAliveLocked()
		n.mu.Unlock()
		n.applyLinkAction(l, act)
	}
}

// repairLoop drains the repair queue: woken by queueRepair, re-ticked so
// pages whose holders were unreachable retry until they settle.
func (n *LiveNode) repairLoop() {
	defer n.wg.Done()
	t := time.NewTicker(repairRetryInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.repairKick:
		case <-t.C:
		}
		n.repairSweep()
	}
}

func (n *LiveNode) repairSweep() {
	n.repairMu.Lock()
	if len(n.repairSet) == 0 {
		n.repairMu.Unlock()
		return
	}
	lpns := make([]int64, 0, len(n.repairSet))
	for lpn := range n.repairSet {
		lpns = append(lpns, lpn)
	}
	n.repairMu.Unlock()
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	n.repairPages(lpns)
}

// repairPages fetches the queued pages from every reachable holder
// (union-of-holders, like RecoverFromPeer), keeps the newest-stamp copy
// of each, and applies it under the shard's persist lock. A page whose
// local record turns out intact with a stamp at least as new settles
// without an apply (a fresh write or eviction healed it first); a page no
// holder answered for stays queued for the next sweep.
func (n *LiveNode) repairPages(lpns []int64) {
	links := n.linksSnapshot()
	if len(links) == 0 {
		return
	}
	origin := ""
	if rs := n.rs.Load(); rs != nil && rs.ring != nil {
		origin = rs.self
	}
	ps := n.pageSize
	type cand struct {
		stamp uint64
		data  []byte
	}
	best := make(map[int64]cand)
	asked := false
	for _, l := range links {
		if !l.alive.Load() {
			continue
		}
		resp, err := l.client.callT(&Message{Type: MsgRepair, LPNs: lpns, Origin: origin}, n.cfg.BulkTimeout)
		if err != nil || resp.Type != MsgRepairResp {
			continue
		}
		if len(resp.Data) != len(resp.LPNs)*ps || len(resp.Stamps) != len(resp.LPNs) {
			continue
		}
		asked = true
		for i, lpn := range resp.LPNs {
			st := resp.Stamps[i]
			if c, ok := best[lpn]; ok && c.stamp >= st {
				continue
			}
			cp := make([]byte, ps)
			copy(cp, resp.Data[i*ps:(i+1)*ps])
			best[lpn] = cand{stamp: st, data: cp}
		}
	}
	if !asked {
		return // nobody reachable; the retry tick will come back
	}
	healed := false
	for _, lpn := range lpns {
		c, have := best[lpn]
		sh := &n.shards[n.buf.ShardIndex(lpn)]
		sh.persistMu.Lock()
		local, ok := n.store.getStamp(lpn)
		intact := ok && storeVerify(n.store, lpn)
		if intact && (!have || local >= c.stamp) {
			// Already healed (fresh write, eviction, or recovery).
			sh.persistMu.Unlock()
			n.clearRepair(lpn)
			continue
		}
		if !have {
			// Still broken and no holder copy yet: keep it queued. (If the
			// owners discarded the backup, the durable copy was synced at
			// discard time — a later verify will find a fresh write healed
			// the slot, or the page is genuinely gone past repair.)
			sh.persistMu.Unlock()
			continue
		}
		// The holder copy wins: the local record is corrupt or missing, or
		// the holder's stamp is strictly newer. (A corrupt local record
		// with a newer stamp still takes the holder copy — it is the best
		// surviving version of the page.)
		n.devMu.Lock()
		_, derr := n.dev.WriteTagged(n.vnow(), lpn, 1, stream.Warm)
		n.devMu.Unlock()
		if derr != nil {
			sh.persistMu.Unlock()
			continue
		}
		if n.victim != nil {
			// The holder copy is about to become the durable truth; a stale
			// victim entry must not outlive it.
			n.victim.InvalidateOlder(lpn, c.stamp)
		}
		if perr := n.store.put(lpn, c.data, c.stamp); perr != nil {
			sh.persistMu.Unlock()
			continue
		}
		if n.victim != nil {
			// Post-put half of the fill-admission handshake (see offerFill).
			n.victim.InvalidateOlder(lpn, c.stamp)
		}
		atomic.AddInt64(&n.stats.RepairedPages, 1)
		healed = true
		sh.persistMu.Unlock()
		n.clearRepair(lpn)
		// Keep the global stamp ahead of every applied version.
		for {
			cur := n.stampCtr.Load()
			if c.stamp <= cur || n.stampCtr.CompareAndSwap(cur, c.stamp) {
				break
			}
		}
	}
	if healed {
		n.store.flush() //nolint:errcheck // durability best effort; poison latches elsewhere
	}
}

// scrubLoop walks the store's file sections one bounded batch per tick,
// re-verifying record checksums; corrupt records flow into the repair
// queue through the store's onCorrupt hook.
func (n *LiveNode) scrubLoop(subs []*fileStore) {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ScrubInterval)
	defer t.Stop()
	si, cursor := 0, int64(0)
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		next, _, _ := subs[si].scrubRange(cursor, scrubBatchSlots)
		cursor = next
		if next == 0 {
			si++
			if si == len(subs) {
				si = 0
				atomic.AddInt64(&n.stats.ScrubPasses, 1)
			}
		}
	}
}

// ScrubOnce synchronously verifies every record in every file-backed
// store section, returning how many records were checked and how many are
// currently failing verification (newly found ones are also queued for
// ring repair). A zero/zero return on a DataDir-less node is normal — an
// in-memory store has no records to rot.
func (n *LiveNode) ScrubOnce() (checked, corrupt int) {
	ss, _ := n.store.(*shardedStore)
	if ss == nil {
		return 0, 0
	}
	for _, sub := range ss.fileSubs() {
		cursor := int64(0)
		for {
			next, ck, bad := sub.scrubRange(cursor, scrubBatchSlots)
			checked += ck
			corrupt += len(bad)
			if next == 0 {
				break
			}
			cursor = next
		}
	}
	if checked > 0 {
		atomic.AddInt64(&n.stats.ScrubPasses, 1)
	}
	return checked, corrupt
}
