package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Peer client errors.
var (
	errClientClosed = errors.New("cluster: peer client closed")
	errCallTimeout  = errors.New("cluster: peer call timed out")
	// errDialBackoff is returned when the redial gate is closed: a recent
	// dial failed and the backoff window has not elapsed yet. Callers get
	// an immediate failure instead of hammering a dead partner.
	errDialBackoff = errors.New("cluster: peer dial backing off")
)

// Redial backoff bounds. The first failed dial arms a short window; each
// further failure doubles it (with ±25% jitter) up to the cap.
const (
	dialBackoffBase = 25 * time.Millisecond
	dialBackoffCap  = 2 * time.Second
)

// peerClient is a pipelined RPC client over one TCP connection. Many calls
// may be in flight at once: a writer goroutine streams frames onto the
// socket (coalescing flushes when the send queue is hot) and a reader
// goroutine matches responses to waiters by Seq, so a round trip no longer
// serializes the connection. Redials are gated by bounded exponential
// backoff so a dead partner is probed, not hammered.
// dialFunc opens the transport to a partner; the default is
// net.DialTimeout. Tests inject fault-laden transports here (see
// internal/faultnet).
type dialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

type peerClient struct {
	addr    string
	timeout time.Duration
	dial    dialFunc

	mu        sync.Mutex
	sess      *peerSession
	seq       uint64
	closed    bool
	backoff   time.Duration
	nextDial  time.Time
	dials     int // dial attempts (for tests)
	dialSkips int // calls rejected by the backoff gate (for tests)
	rng       *rand.Rand

	wg sync.WaitGroup
}

// peerCall is one in-flight request. chunks, when non-nil, is the
// request's page payload as a gather list: the frame encoder splices the
// slices onto the wire by reference (see appendFrameV2), so the caller
// must keep them untouched until the call completes.
type peerCall struct {
	msg    *Message
	chunks [][]byte
	sess   *peerSession
	done   chan struct{}
	resp   *Message
	err    error
}

// peerSession is the state of one live connection: its send queue, the
// in-flight call table, and the pair of pump goroutines.
type peerSession struct {
	client *peerClient
	conn   net.Conn
	sendq  chan *peerCall
	dead   chan struct{}

	mu      sync.Mutex
	pending map[uint64]*peerCall
	err     error

	failOnce sync.Once
}

func newPeerClient(addr string, timeout time.Duration, dial dialFunc) *peerClient {
	if dial == nil {
		dial = net.DialTimeout
	}
	return &peerClient{
		addr:    addr,
		timeout: timeout,
		dial:    dial,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// call sends one request and waits for its response (or timeout). It is
// safe for concurrent use; concurrent calls share the pipeline.
func (p *peerClient) call(m *Message) (*Message, error) {
	return p.callT(m, p.timeout)
}

// callT is call with a caller-chosen wait budget: bulk transfers (RCT
// recovery, resync streams) get a larger timeout than per-page traffic so
// a big but healthy frame isn't mistaken for a hung partner.
func (p *peerClient) callT(m *Message, timeout time.Duration) (*Message, error) {
	pc, err := p.start(m)
	if err != nil {
		return nil, err
	}
	return p.waitT(pc, timeout)
}

// start enqueues a request onto the pipeline without waiting for the
// response. The caller must eventually wait(pc).
func (p *peerClient) start(m *Message) (*peerCall, error) {
	return p.startChunks(m, nil)
}

// startChunks is start with the page payload supplied as a gather list
// instead of m.Data: the chunks go onto the wire zero-copy, in order,
// after whatever m.Data holds. The caller must not mutate or recycle the
// chunk slices until the call completes (the writer's Write blocks on
// exactly that completion).
func (p *peerClient) startChunks(m *Message, chunks [][]byte) (*peerCall, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errClientClosed
	}
	s := p.sess
	if s == nil {
		var err error
		if s, err = p.dialLocked(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	p.seq++
	m.Seq = p.seq
	pc := &peerCall{msg: m, chunks: chunks, sess: s, done: make(chan struct{})}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		p.mu.Unlock()
		return nil, err
	}
	s.pending[m.Seq] = pc
	s.mu.Unlock()
	p.mu.Unlock()

	select {
	case s.sendq <- pc:
		return pc, nil
	case <-s.dead:
		// The session failed while we were queueing; the drain already
		// completed (or will complete) this call with the session error.
		<-pc.done
		return nil, pc.err
	}
}

// wait blocks until the call completes or the client timeout elapses. A
// timeout tears the session down (the connection is no longer trustworthy:
// a late response would be matched against nothing).
func (p *peerClient) wait(pc *peerCall) (*Message, error) {
	return p.waitT(pc, p.timeout)
}

// waitT is wait with an explicit timeout (see callT).
func (p *peerClient) waitT(pc *peerCall, timeout time.Duration) (*Message, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-pc.done:
		return pc.resp, pc.err
	case <-t.C:
		pc.sess.fail(errCallTimeout)
		<-pc.done
		return pc.resp, pc.err
	}
}

// dialLocked connects (subject to the backoff gate) and starts the pump
// goroutines. Caller holds p.mu.
func (p *peerClient) dialLocked() (*peerSession, error) {
	if now := time.Now(); now.Before(p.nextDial) {
		p.dialSkips++
		return nil, fmt.Errorf("%w (%v remaining)", errDialBackoff, p.nextDial.Sub(now).Round(time.Millisecond))
	}
	p.dials++
	conn, err := p.dial("tcp", p.addr, p.timeout)
	if err != nil {
		d := p.backoff
		if d == 0 {
			d = dialBackoffBase
		} else {
			d *= 2
			if d > dialBackoffCap {
				d = dialBackoffCap
			}
		}
		p.backoff = d
		// ±25% jitter so paired nodes don't probe in lockstep.
		jitter := time.Duration(p.rng.Int63n(int64(d)/2+1)) - d/4
		p.nextDial = time.Now().Add(d + jitter)
		return nil, err
	}
	p.backoff = 0
	p.nextDial = time.Time{}
	s := &peerSession{
		client:  p,
		conn:    conn,
		sendq:   make(chan *peerCall, 256),
		dead:    make(chan struct{}),
		pending: make(map[uint64]*peerCall),
	}
	p.sess = s
	p.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return s, nil
}

// nextDialIn reports how long the redial backoff gate stays closed: zero
// when a session is live (or a dial may be attempted now), otherwise the
// remaining window. The prober paces itself with this instead of guessing,
// so it rides the same jittered exponential backoff as everyone else.
func (p *peerClient) nextDialIn() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sess != nil || p.closed {
		return 0
	}
	d := time.Until(p.nextDial)
	if d < 0 {
		d = 0
	}
	return d
}

// dialStats reports dial attempts and backoff-gated rejections (tests).
func (p *peerClient) dialStats() (dials, skips int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials, p.dialSkips
}

// close tears down the current session and fails all in-flight calls.
func (p *peerClient) close() {
	p.mu.Lock()
	p.closed = true
	s := p.sess
	p.mu.Unlock()
	if s != nil {
		s.fail(errClientClosed)
	}
	p.wg.Wait()
}

// sendBatchFrames caps how many queued frames one writev gathers. The
// cap bounds the gather list (and the scratch blocks pinned at once),
// not throughput — a hot queue just fills the next batch immediately.
const sendBatchFrames = 64

// writeLoop streams queued frames onto the socket as checksummed v2
// gather lists: every frame's metadata is encoded into a pooled scratch
// block, its page payload is spliced in by reference, and everything the
// queue holds at that moment leaves in a single writev — no buffered-
// writer copy, no payload copy, and consecutive frames from a hot queue
// share one syscall.
func (s *peerSession) writeLoop() {
	defer s.client.wg.Done()
	var (
		bufs    net.Buffers
		scratch []*[]byte
	)
	release := func() {
		for _, sp := range scratch {
			releaseFrameScratch(sp)
		}
		scratch = scratch[:0]
	}
	for {
		select {
		case pc := <-s.sendq:
			bufs = bufs[:0]
			for {
				nb, sp, err := appendFrameV2(bufs, pc.msg, pc.chunks)
				if err != nil {
					release()
					s.fail(err)
					return
				}
				bufs, scratch = nb, append(scratch, sp)
				if len(scratch) >= sendBatchFrames {
					break
				}
				var more bool
				select {
				case pc = <-s.sendq:
					more = true
				default:
				}
				if !more {
					break
				}
			}
			_ = s.conn.SetWriteDeadline(time.Now().Add(s.client.timeout))
			// WriteTo consumes the slice it is invoked on; keep bufs
			// intact so its backing array is reused next batch.
			out := bufs
			_, err := out.WriteTo(s.conn)
			release()
			if err != nil {
				s.fail(err)
				return
			}
		case <-s.dead:
			return
		}
	}
}

// readLoop matches response frames to pending calls by Seq, tolerating
// out-of-order completion. The connection is read through one buffered
// reader: a frame header is a handful of bytes, and a pipelined burst of
// acks arrives as one segment, so buffering turns several tiny reads per
// frame into one syscall per burst.
func (s *peerSession) readLoop() {
	defer s.client.wg.Done()
	br := bufio.NewReaderSize(s.conn, 64<<10)
	for {
		msg, err := ReadFrame(br)
		if err != nil {
			s.fail(err)
			return
		}
		s.mu.Lock()
		pc := s.pending[msg.Seq]
		delete(s.pending, msg.Seq)
		s.mu.Unlock()
		if pc == nil {
			s.fail(fmt.Errorf("cluster: response with unknown seq %d", msg.Seq))
			return
		}
		if msg.Type == MsgError {
			pc.err = fmt.Errorf("cluster: peer error: %s", msg.Err)
		} else {
			pc.resp = msg
		}
		close(pc.done)
	}
}

// fail tears the session down once: the connection closes, both pumps
// exit, every pending call completes with err, and the client detaches so
// the next start() redials.
func (s *peerSession) fail(err error) {
	s.failOnce.Do(func() {
		s.mu.Lock()
		s.err = err
		drained := make([]*peerCall, 0, len(s.pending))
		for seq, pc := range s.pending {
			delete(s.pending, seq)
			drained = append(drained, pc)
		}
		s.mu.Unlock()
		close(s.dead)
		s.conn.Close()
		p := s.client
		p.mu.Lock()
		if p.sess == s {
			p.sess = nil
		}
		p.mu.Unlock()
		for _, pc := range drained {
			pc.err = err
			close(pc.done)
		}
	})
}
