package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
)

// Wire format v2. A v1 frame is a 4-byte big-endian body length followed
// by the Marshal body; since MaxFrameBytes is 16 MiB the first length
// byte of a valid v1 frame is at most 0x01, so 0xFC is free to serve as
// a version-carrying magic byte and both formats can share one stream
// reader (ReadFrame sniffs the first byte).
//
// A v2 frame is:
//
//	[0] 0xFC magic
//	[1] 0x02 version
//	[2:4] reserved, must be zero
//	[4:8] big-endian body length
//	[8:12] big-endian CRC32-C of the body
//	[12:12+len] body, byte-identical to the v1 Marshal encoding
//
// Keeping the body encoding unchanged means Unmarshal decodes both
// versions; what v2 adds is an integrity check (v1 trusted TCP
// end-to-end) and, on the send side, a gather-list encoder that never
// copies page payloads: appendFrameV2 writes the frame's metadata into
// one pooled scratch block and splices the payload chunks in by
// reference, so a whole send batch goes to the kernel as one writev.
// The constants are exported for wire-level observers (the chaos suite's
// SeqChecker reassembles and CRC-verifies tapped traffic).
const (
	FrameMagicV2  = 0xFC
	FrameVersion2 = 0x02
	FrameHdrV2Len = 12
)

// ChecksumV2 computes the CRC32-C a v2 frame carries for body.
func ChecksumV2(body []byte) uint32 { return crc32.Checksum(body, castagnoli) }

// ErrChecksum reports a v2 frame whose body failed CRC verification.
var ErrChecksum = errors.New("cluster: frame checksum mismatch")

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64, and the standard choice for storage framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameScratchPool recycles the metadata blocks appendFrameV2 encodes
// into. A block holds a frame's header plus its LPN/stamp arrays — a few
// KB for a big forward batch — and is reused across frames once the
// writev covering it completes.
var frameScratchPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// releaseFrameScratch returns a scratch block obtained from
// appendFrameV2 to the pool. Callers must not release a block before the
// net.Buffers referencing it have been fully written.
func releaseFrameScratch(sp *[]byte) {
	if sp != nil {
		frameScratchPool.Put(sp)
	}
}

// appendFrameV2 appends one v2 frame to bufs as a gather list without
// copying page data. The frame's payload is m.Data (if any) followed by
// the chunks, in order; metadata lands in a pooled scratch block that is
// referenced by the returned list in two pieces (header+leading metadata,
// trailing metadata) with the payload spliced between them by reference.
//
// The returned scratch block must be released with releaseFrameScratch —
// and the payload slices must stay untouched — only after the returned
// buffers have been written. The checksum is computed here, so a payload
// mutated between append and write is detected by the receiver.
func appendFrameV2(bufs net.Buffers, m *Message, chunks [][]byte) (net.Buffers, *[]byte, error) {
	if len(m.Err) > math.MaxUint16 {
		return bufs, nil, fmt.Errorf("%w: error string too long", ErrBadFrame)
	}
	dataLen := len(m.Data)
	for _, c := range chunks {
		dataLen += len(c)
	}
	bodyLen := 1 + 8 + 4 + 8*len(m.LPNs) + 4 + 8*len(m.Stamps) + 4 + dataLen + 8*4 + 2 + len(m.Err) + m.extLen()
	if bodyLen > MaxFrameBytes {
		return bufs, nil, ErrFrameTooLarge
	}
	sp := frameScratchPool.Get().(*[]byte)
	blk := (*sp)[:0]
	blk = append(blk, FrameMagicV2, FrameVersion2, 0, 0)
	blk = binary.BigEndian.AppendUint32(blk, uint32(bodyLen))
	blk = append(blk, 0, 0, 0, 0) // CRC, patched once the body is encoded
	blk = append(blk, byte(m.Type))
	blk = binary.BigEndian.AppendUint64(blk, m.Seq)
	blk = binary.BigEndian.AppendUint32(blk, uint32(len(m.LPNs)))
	for _, lpn := range m.LPNs {
		blk = binary.BigEndian.AppendUint64(blk, uint64(lpn))
	}
	blk = binary.BigEndian.AppendUint32(blk, uint32(len(m.Stamps)))
	for _, st := range m.Stamps {
		blk = binary.BigEndian.AppendUint64(blk, st)
	}
	blk = binary.BigEndian.AppendUint32(blk, uint32(dataLen))
	// The payload goes here on the wire; everything after this offset is
	// the trailing metadata piece.
	split := len(blk)
	for _, f := range [4]float64{m.Info.WriteFrac, m.Info.Mem, m.Info.CPU, m.Info.Net} {
		blk = binary.BigEndian.AppendUint64(blk, math.Float64bits(f))
	}
	blk = binary.BigEndian.AppendUint16(blk, uint16(len(m.Err)))
	blk = append(blk, m.Err...)
	// The trailing extension (stream tags + GC pressure) is metadata, so
	// it lands in the trailing scratch piece after the payload splice.
	blk = m.appendExt(blk)

	crc := crc32.Update(0, castagnoli, blk[FrameHdrV2Len:split])
	if len(m.Data) > 0 {
		crc = crc32.Update(crc, castagnoli, m.Data)
	}
	for _, c := range chunks {
		crc = crc32.Update(crc, castagnoli, c)
	}
	crc = crc32.Update(crc, castagnoli, blk[split:])
	binary.BigEndian.PutUint32(blk[8:12], crc)
	*sp = blk

	bufs = append(bufs, blk[:split])
	if len(m.Data) > 0 {
		bufs = append(bufs, m.Data)
	}
	for _, c := range chunks {
		if len(c) > 0 {
			bufs = append(bufs, c)
		}
	}
	bufs = append(bufs, blk[split:])
	return bufs, sp, nil
}

// WriteFrameV2 writes one checksummed v2 frame to w as a single gather
// write (one syscall on a TCP connection, versus v1's header+body pair).
func WriteFrameV2(w io.Writer, m *Message) error {
	bufs, sp, err := appendFrameV2(nil, m, nil)
	if err != nil {
		return err
	}
	_, err = bufs.WriteTo(w)
	releaseFrameScratch(sp)
	return err
}

// readFrameV2 reads the remainder of a v2 frame whose first four header
// bytes (magic, version, reserved) were already consumed by ReadFrame's
// sniff.
func readFrameV2(r io.Reader, hdr [4]byte) (*Message, error) {
	if hdr[1] != FrameVersion2 {
		return nil, fmt.Errorf("%w: unsupported frame version %d", ErrBadFrame, hdr[1])
	}
	if hdr[2] != 0 || hdr[3] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved frame bytes", ErrBadFrame)
	}
	var rest [FrameHdrV2Len - 4]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(rest[:4])
	sum := binary.BigEndian.Uint32(rest[4:])
	if n > MaxFrameBytes {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, ErrChecksum
	}
	var m Message
	if err := m.Unmarshal(body); err != nil {
		return nil, err
	}
	return &m, nil
}
