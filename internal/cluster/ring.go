package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is the number of virtual points each member contributes to
// the hash ring. More points smooth the block distribution across members
// (each member's arc is the union of many small arcs instead of one big
// one); 64 keeps the per-member imbalance under a few percent while the
// whole point table stays small enough to rebuild on every membership
// change.
const ringVnodes = 64

// Ring is a consistent-hash ring over cluster member IDs (partner listen
// addresses). Each member contributes ringVnodes points; a block's backup
// owners are the first `replicas` distinct members met walking clockwise
// from the block's hash. The structure is immutable after construction —
// membership changes build a new Ring — so readers never lock.
//
// Because every node's LPN space is private (each owns its own SSD), only
// the home node ever computes the owners of its blocks: placement needs
// no global coordination beyond agreeing on the member list, which the
// ownership epoch on v2 frames enforces (see SetMembers / checkEpoch).
type Ring struct {
	replicas int
	members  []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// NewRing builds a ring over the given member IDs. IDs must be non-empty
// and unique; replicas is clamped to [1, len(members)-1] (a member never
// backs itself up, so at most len-1 distinct owners exist).
func NewRing(members []string, replicas int) (*Ring, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("cluster: ring needs at least 2 members, got %d", len(members))
	}
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: ring member ID must be non-empty")
		}
		if _, dup := seen[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
		seen[m] = struct{}{}
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(members)-1 {
		replicas = len(members) - 1
	}
	r := &Ring{
		replicas: replicas,
		members:  append([]string(nil), members...),
		points:   make([]ringPoint, 0, len(members)*ringVnodes),
	}
	// Sort the member list so rings built from permuted inputs are
	// identical: owner sets depend only on the membership SET.
	sort.Strings(r.members)
	for mi, m := range r.members {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m, v), member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's member IDs (sorted).
func (r *Ring) Members() []string { return r.members }

// Replicas reports the effective replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Owners returns the backup owners for a block key: the first Replicas
// distinct members != exclude met walking clockwise from the key's point.
// The walk is deterministic — same ring, same key, same owners — and
// consults only the point table, so it is safe from any goroutine.
func (r *Ring) Owners(key uint64, exclude string) []string {
	owners := make([]string, 0, r.replicas)
	r.appendOwners(&owners, key, exclude)
	return owners
}

// appendOwners is Owners without the allocation, for hot-path callers
// that reuse a scratch slice.
func (r *Ring) appendOwners(out *[]string, key uint64, exclude string) {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	n := len(r.points)
	var taken [ringMaxInlineMembers]bool
	var takenMap map[int32]bool
	if len(r.members) > ringMaxInlineMembers {
		takenMap = make(map[int32]bool, r.replicas)
	}
	for i := 0; i < n && len(*out) < r.replicas; i++ {
		p := r.points[(start+i)%n]
		m := r.members[p.member]
		if m == exclude {
			continue
		}
		if takenMap != nil {
			if takenMap[p.member] {
				continue
			}
			takenMap[p.member] = true
		} else {
			if taken[p.member] {
				continue
			}
			taken[p.member] = true
		}
		*out = append(*out, m)
	}
}

// ringMaxInlineMembers bounds the stack-allocated dedup bitmap in
// appendOwners; larger rings fall back to a map.
const ringMaxInlineMembers = 64

// BlockKey hashes one of a node's erase blocks onto the ring. The home
// node's ID is folded in so different nodes' identically-numbered blocks
// land on different points — without it, every node's block b would chase
// the same arc and the ring would load its successors unevenly.
func BlockKey(self string, block int64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(self))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(block))
	_, _ = h.Write(b[:])
	return mix64(h.Sum64())
}

// vnodeHash places one virtual point for a member.
func vnodeHash(member string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(vnode))
	_, _ = h.Write(b[:])
	return mix64(h.Sum64())
}

// mix64 is the murmur3 64-bit finalizer. FNV-1a alone is NOT enough for
// ring placement: appending a small counter (the vnode index, the block
// number) to the input yields near-sequential outputs, so one member's 64
// vnodes would collapse into a single tight arc and a node's consecutive
// blocks would all chase the same successor. The finalizer avalanches
// those low-byte differences across all 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
