// Package flashcoop is a from-scratch reproduction of "FlashCoop: A
// Locality-Aware Cooperative Buffer Management for SSD-Based Storage
// Cluster" (Wei, Gong, Pathak, Tay — ICPP 2010).
//
// FlashCoop pairs storage servers so each buffers its writes in local RAM
// and mirrors them into the partner's RAM over a fast network, instead of
// writing synchronously to its SSD. A Locality-Aware Replacement (LAR)
// policy later evicts whole logical blocks and flushes them sequentially,
// turning a stream of small random writes — poison for NAND flash — into
// large sequential writes, which improves latency, cuts garbage-collection
// erases, and extends SSD lifetime.
//
// The package exposes two operating modes:
//
//   - Simulation (NewNode / NewPair / Replay): deterministic virtual-time
//     nodes over a built-in SSD simulator (page-level, BAST, and FAST
//     FTLs over a NAND timing model), used to regenerate every table and
//     figure of the paper. See cmd/benchrunner.
//
//   - Live (NewLiveNode): the same protocol over real TCP with an actual
//     data plane, heartbeat failure detection, and crash recovery from
//     the partner's remote buffer. See examples/cluster.
//
// Quick start (simulation):
//
//	a, b, err := flashcoop.NewPair(
//		flashcoop.DefaultConfig("a", flashcoop.PolicyLAR),
//		flashcoop.DefaultConfig("b", flashcoop.PolicyLAR),
//	)
//	_ = b // partner hosts a's remote buffer
//	done, err := a.Access(flashcoop.Request{Op: flashcoop.OpWrite, LPN: 0, Pages: 8})
//
// See examples/quickstart for a complete program.
package flashcoop

import (
	"flashcoop/internal/buffer"
	"flashcoop/internal/cluster"
	"flashcoop/internal/core"
	"flashcoop/internal/flash"
	"flashcoop/internal/ftl"
	"flashcoop/internal/sim"
	"flashcoop/internal/ssd"
	"flashcoop/internal/trace"
	"flashcoop/internal/workload"
)

// VTime is a point on the simulation's virtual time line (nanoseconds since
// the simulation epoch). Request.Arrival and all returned completion times
// use it.
type VTime = sim.VTime

// Common virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Replacement policies for Config.Policy.
const (
	PolicyLAR      = buffer.PolicyLAR     // the paper's Locality-Aware Replacement
	PolicyLRU      = buffer.PolicyLRU     // page-granular Least Recently Used
	PolicyLFU      = buffer.PolicyLFU     // page-granular Least Frequently Used
	PolicyBPLRU    = buffer.PolicyBPLRU   // Block Padding LRU (extension)
	PolicyFAB      = buffer.PolicyFAB     // Flash-Aware Buffer (extension)
	PolicyLBCLOCK  = buffer.PolicyLBCLOCK // Large Block CLOCK (extension)
	PolicyBaseline = core.PolicyBaseline  // no buffer: synchronous SSD writes
)

// Request directions.
const (
	OpRead  = trace.Read
	OpWrite = trace.Write
)

// Core simulation types. These are aliases of the implementation types, so
// the full method sets documented in the internal packages apply.
type (
	// Config parameterizes a simulated FlashCoop node.
	Config = core.Config
	// Node is a simulated FlashCoop storage server.
	Node = core.Node
	// NodeStats aggregates a node's counters.
	NodeStats = core.NodeStats
	// NetworkModel is the cooperative link's latency/bandwidth model.
	NetworkModel = core.NetworkModel
	// WorkloadInfo is the dynamic-allocation exchange record.
	WorkloadInfo = core.WorkloadInfo
	// AllocParams are Equation 1's α, β, γ factors.
	AllocParams = core.AllocParams
	// ReplayOptions tune a trace replay.
	ReplayOptions = core.ReplayOptions
	// ReplayStats is the outcome of a trace replay.
	ReplayStats = core.ReplayStats
	// Request is one I/O request.
	Request = trace.Request
	// TraceStats summarizes a request stream (Table I columns).
	TraceStats = trace.Stats
	// SSDConfig selects and parameterizes a node's simulated SSD.
	SSDConfig = ssd.Config
	// FTLConfig carries flash geometry and FTL tuning.
	FTLConfig = ftl.Config
	// FlashParams is the NAND geometry and timing (Table II).
	FlashParams = flash.Params
	// LAROptions expose LAR's design choices for ablation.
	LAROptions = buffer.LAROptions
	// Profile describes a synthetic workload generator.
	Profile = workload.Profile
)

// Live (TCP) deployment types.
type (
	// LiveConfig parameterizes a live TCP node.
	LiveConfig = cluster.LiveConfig
	// LiveNode is a FlashCoop storage server over real TCP.
	LiveNode = cluster.LiveNode
	// LiveStats counts live-node activity.
	LiveStats = cluster.LiveStats
	// StreamStats breaks flash wear down by eviction temperature stream
	// (see LiveNode.StreamStats).
	StreamStats = cluster.StreamStats
	// LatencyStats summarizes a live node's latency percentiles (ms).
	LatencyStats = cluster.LatencyStats
	// PeerState is a live node's partner lifecycle state.
	PeerState = cluster.PeerState
)

// Peer lifecycle states (see LiveNode.PeerLifecycle): cooperative
// buffering is on in StateHealthy (and pre-failover StateSuspect); a node
// that failed over walks Probing→Resyncing back to Healthy, re-replicating
// the writes it persisted alone before backups resume.
const (
	StateHealthy   = cluster.StateHealthy
	StateSuspect   = cluster.StateSuspect
	StateDegraded  = cluster.StateDegraded
	StateProbing   = cluster.StateProbing
	StateResyncing = cluster.StateResyncing
)

// ErrOverloaded is returned by LiveNode.Write when the bounded admission
// queue (or the forward pipeline) stays saturated past the configured
// write deadline; the write was shed, not acknowledged.
var ErrOverloaded = cluster.ErrOverloaded

// ErrSyncPoisoned is returned by LiveNode.Write (and the persistence
// paths) once an fsync of the node's page store has failed: the kernel
// may already have dropped the dirty pages, so retrying the fsync would
// report success without durability. The section stays poisoned until
// the process restarts and recovers from its ring replicas; the node
// degrades instead of acking writes it cannot persist.
var ErrSyncPoisoned = cluster.ErrSyncPoisoned

// NewNode constructs a stand-alone simulated node; attach a partner with
// Node.Attach or use NewPair.
func NewNode(cfg Config) (*Node, error) { return core.NewNode(cfg) }

// NewPair constructs two simulated nodes wired as cooperative partners.
func NewPair(cfgA, cfgB Config) (*Node, *Node, error) { return core.NewPair(cfgA, cfgB) }

// Replay drives a request stream through a node and collects the metrics
// the paper's figures report.
func Replay(n *Node, reqs []Request, opts ReplayOptions) (ReplayStats, error) {
	return core.Replay(n, reqs, opts)
}

// NewLiveNode constructs a live TCP node (see package cluster).
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return cluster.NewLiveNode(cfg) }

// NewLiveRing constructs N live TCP nodes wired into one consistent-hash
// cooperative ring at epoch 1: each node's dirty pages are backed up on
// the ring successors of their erase block, `replication` distinct
// members deep. The nodes are returned started but not connected — call
// ConnectPeer (and StartHeartbeat) on each, as with a pair. See package
// cluster (ring.go, membership.go).
func NewLiveRing(cfgs []LiveConfig, replication int) ([]*LiveNode, error) {
	return cluster.NewLiveRing(cfgs, replication)
}

// TableIIFlash returns the paper's Table II NAND configuration (4KB pages,
// 256KB blocks, 4GB die, 25µs/200µs/1.5ms/100µs timings, 100K cycles).
func TableIIFlash() FlashParams { return flash.TableII() }

// DefaultSSD returns a Table II-timed SSD scaled to the given number of
// erase blocks (64 pages each), using the named FTL scheme.
func DefaultSSD(scheme string, blocks int) SSDConfig {
	p := flash.TableII()
	p.BlocksPerPlane = blocks / p.PlanesPerDie
	if p.BlocksPerPlane < 1 {
		p.BlocksPerPlane = 1
		p.PlanesPerDie = blocks
		if p.PlanesPerDie < 1 {
			p.PlanesPerDie = 1
		}
	}
	return SSDConfig{Scheme: scheme, FTL: FTLConfig{Flash: p}}
}

// DefaultConfig returns a ready-to-use simulated node configuration: a
// 512MB-class BAST SSD, an 8192-page (32MB) local buffer, a matching
// remote buffer, and the paper's network and allocation defaults.
func DefaultConfig(name, policy string) Config {
	return Config{
		Name:        name,
		Policy:      policy,
		BufferPages: 8192,
		RemotePages: 8192,
		SSD:         DefaultSSD("bast", 2048),
	}
}

// Fin1 returns the write-dominant financial workload profile (Table I).
func Fin1(requests int, seed int64) Profile { return workload.Fin1(requests, seed) }

// Fin2 returns the read-dominant financial workload profile (Table I).
func Fin2(requests int, seed int64) Profile { return workload.Fin2(requests, seed) }

// Mix returns the synthetic 50/50 mixed workload profile (Table I).
func Mix(requests int, seed int64) Profile { return workload.Mix(requests, seed) }

// WebSearch returns a read-dominant profile modeled on the SPC WebSearch
// traces (extension).
func WebSearch(requests int, seed int64) Profile { return workload.WebSearch(requests, seed) }

// ComputeTraceStats derives Table I statistics from a request stream.
func ComputeTraceStats(reqs []Request) TraceStats { return trace.ComputeStats(reqs) }
