module flashcoop

go 1.24
