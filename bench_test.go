// Benchmarks regenerating the FlashCoop paper's evaluation, one per table
// and figure (plus the LAR design-choice ablations from DESIGN.md §5).
// Each benchmark iteration performs the complete experiment at a reduced
// -but-representative scale; `cmd/benchrunner` runs them at full scale with
// printed tables.
package flashcoop_test

import (
	"io"
	"testing"

	"flashcoop/internal/buffer"
	"flashcoop/internal/experiments"
)

// benchOpts keeps a single benchmark iteration around a second.
func benchOpts() experiments.Options {
	return experiments.Options{Requests: 10000, BufferPages: 1024, SSDBlocks: 1024}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (write bandwidth vs request size).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1 regenerates Table I (workload statistics).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (SSD configuration).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table III (hit ratio vs buffer size).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig6 regenerates Figure 6 (average response time grid).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (block-erase counts grid).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (write-length CDFs).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (dynamic memory allocation).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkHeadline regenerates the abstract's headline comparison.
func BenchmarkHeadline(b *testing.B) { runExperiment(b, "headline") }

// BenchmarkGridShared regenerates all four grid-backed figures (fig6, fig7,
// fig8, headline) from one precomputed Grid, the way cmd/benchrunner does:
// each of the 36 (scheme, workload, policy) cells is simulated exactly once
// and the figures only read the cache. Compare against the sum of
// BenchmarkFig6..BenchmarkHeadline, which recompute overlapping cells.
func BenchmarkGridShared(b *testing.B) {
	ids := []string{"fig6", "fig7", "fig8", "headline"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := experiments.NewGrid(benchOpts())
		if err := g.Precompute(1); err != nil {
			b.Fatal(err)
		}
		for _, id := range ids {
			e, err := experiments.ByID(id)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.RunGrid(g, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Ablation benchmarks: each measures a full Fin1/BAST replay with one LAR
// design choice disabled, reporting the same replay so the -benchmem and
// custom metrics are comparable across variants.

func runAblation(b *testing.B, variant string) {
	b.Helper()
	var opts buffer.LAROptions
	found := false
	for _, v := range experiments.AblationVariants() {
		if v.Name == variant {
			opts, found = v.Opts, true
		}
	}
	if !found {
		b.Fatalf("unknown ablation variant %q", variant)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunAblationCell(benchOpts(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs.Resp.Mean(), "ms/req")
		b.ReportMetric(float64(rs.Erases), "erases")
		b.ReportMetric(rs.HitRatio*100, "hit%")
	}
}

// BenchmarkAblationDefault is the paper-default LAR configuration.
func BenchmarkAblationDefault(b *testing.B) { runAblation(b, "paper-default") }

// BenchmarkAblationDirtyOrder disables the second-level dirty-count sort.
func BenchmarkAblationDirtyOrder(b *testing.B) { runAblation(b, "no-dirty-order") }

// BenchmarkAblationCleanFlush disables flushing clean pages with victims.
func BenchmarkAblationCleanFlush(b *testing.B) { runAblation(b, "no-clean-flush") }

// BenchmarkAblationClustering disables small-write clustering.
func BenchmarkAblationClustering(b *testing.B) { runAblation(b, "no-clustering") }

// BenchmarkAblationWriteOnly disables read buffering.
func BenchmarkAblationWriteOnly(b *testing.B) { runAblation(b, "write-only-buffer") }

// BenchmarkAblationSeqPopularity counts per-page instead of per-access
// popularity.
func BenchmarkAblationSeqPopularity(b *testing.B) { runAblation(b, "per-page-popularity") }

// Extension benchmarks (beyond the paper): widened policy set, DFTL,
// short-lived files, dynamic-allocation smoothing, recovery-time and wear
// studies.

// BenchmarkExtension runs the widened policy / DFTL / TRIM study.
func BenchmarkExtension(b *testing.B) { runExperiment(b, "extension") }

// BenchmarkSmoothing runs the dynamic-allocation smoothing study.
func BenchmarkSmoothing(b *testing.B) { runExperiment(b, "smoothing") }

// BenchmarkRecovery runs the recovery-time vs remote-buffer-size study.
func BenchmarkRecovery(b *testing.B) { runExperiment(b, "recovery") }

// BenchmarkWear runs the flash wear / lifetime study.
func BenchmarkWear(b *testing.B) { runExperiment(b, "wear") }

// BenchmarkBGGC runs the idle-period garbage collection study.
func BenchmarkBGGC(b *testing.B) { runExperiment(b, "bggc") }
