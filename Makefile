# Developer entry points. `make ci` is the gate scripts/ci.sh runs in CI;
# the bench targets regenerate the paper figures and perf records.

GO ?= go

.PHONY: all build test race vet ci chaos chaos-flap chaos-ring chaos-disk fuzz cover bench bench-grid bench-cluster bench-shard bench-streams bench-victim bench-gate profile

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the two packages with real concurrency: the parallel
# experiment grid and the cluster message loop.
race:
	$(GO) test -race ./internal/experiments/... ./internal/cluster/...

vet:
	$(GO) vet ./...

ci:
	./scripts/ci.sh

# Seeded fault-injection runs against a live localhost pair, under the
# race detector. Reproduce a failure with CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/cluster/check/

# The link-flap drill alone: repeated asymmetric partition/heal cycles
# against a live pair with writers running, durability-checked after every
# heal. CHAOS_FLAPS=<n> raises the cycle count, CHAOS_SEED=<seed> replays.
chaos-flap:
	$(GO) test -race -v -run 'TestChaosLinkFlap' ./internal/cluster/check/

# The membership-churn suite alone: a live 3-node ring under write load
# through join, leave (stale frames against the epoch gate), crash
# mid-resync with replacement, rejoin, and primary crash/recovery, with
# durability invariants checked at every quiescent point. Three seeds per
# run; CHAOS_SEED=<seed> make chaos-ring replays.
chaos-ring:
	$(GO) test -race -v -run 'TestChaosMembershipChurn' ./internal/cluster/check/

# The disk-fault drill alone: a live pair whose primary store runs over
# the seeded faultfs injector — torn writes at a power cut mid-eviction,
# restart over the damaged files, scrub-and-repair from the partner's
# backups to zero checksum mismatches, then the fsyncgate drill (a failed
# fsync must degrade the node, not ack unsyncable writes). Three pinned
# seeds per run; CHAOS_SEED=<seed> make chaos-disk replays.
chaos-disk:
	$(GO) test -race -v -run 'TestChaosTornWriteRepair' ./internal/cluster/check/

# Short fuzz budgets for the wire-format and trace-parser fuzz targets.
# The bounded -fuzzminimizetime keeps fresh corpora from spending the
# whole budget minimizing their first interesting inputs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrameV2$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeResync$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMembership$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeEpoch$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSlot$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/cluster/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeVictimSegment$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/victim/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s -fuzzminimizetime 20x ./internal/trace/

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure; grid cells fan out over all CPUs.
bench:
	$(GO) run ./cmd/benchrunner

# Measure the live replication path: sync vs pipelined throughput and
# latency percentiles over a localhost pair, then the ring-scale ladder
# (one driven member, 2-node pair vs 3-node ring), both recorded into
# BENCH_cluster.json (writeReport merges the sections).
bench-cluster:
	$(GO) run ./cmd/loadgen -writers 32 -ops 32000 -json BENCH_cluster.json
	$(GO) run ./cmd/loadgen -ring-scale 2,3 -reps 3 -json BENCH_cluster.json

# Shard-scaling ladder: the eviction-bound write mix against a file-backed
# fsync-on-flush store at 1, 4, and 16 shards, recorded as BENCH_shard.json.
# Small erase blocks + queue depth 1 keep every rung fsync-bound; the large
# device keeps simulated GC out of the measurement; each rung reports the
# median of three reps to ride out host fsync jitter. The sync ladder
# reruns the widest rung across group-commit sync intervals: -1 disables
# the coordinator (every evictor pays its own fsync), 0 self-clocks, and
# the positive rungs hold the pass open to trade latency for batching.
bench-shard:
	$(GO) run ./cmd/loadgen -shard-scale 1,4,16 -writers 32 -ops 24000 \
		-buffer 1024 -remote 32768 -evict-queue 1 -ppb 2 -blocks 65536 \
		-sync-scale=-1,0,0.5,2 -reps 3 -json BENCH_shard.json
	$(GO) run ./cmd/loadgen -stream-scale -writers 8 -ops 60000 -hotfrac 0.7 \
		-json BENCH_shard.json

# Multi-stream flash-wear A/B alone: the mixed hot/cold workload replayed
# with eviction stream tagging on and then with -streams=off at equal ops,
# over a high-utilization device (2% spare), reporting total erases, GC
# copies, and the per-temperature wear split. Its workload flags differ
# from the shard ladder's (fewer, hotter writers; more ops so GC reaches
# steady state), which is why bench-shard records it with a second loadgen
# invocation — writeReport merges sections into the existing report.
bench-streams:
	$(GO) run ./cmd/loadgen -stream-scale -writers 8 -ops 60000 -hotfrac 0.7

# Read-tier A/B: the read-heavy zipfian mix replayed with the flash victim
# cache on and then off at equal ops, against a capacity-filled home device
# with a tight spare pool (GC live in the measured window). Seed and warmup
# run unpaced; the measured window runs under device pacing, so the read
# percentiles are the modeled medium's — misses queueing behind home
# writes and GC versus victim-log hits that skip that queue entirely. The
# victim_scale section lands in BENCH_shard.json and the gate holds its
# read-p99 and flash write-amp ratios.
bench-victim:
	$(GO) run ./cmd/loadgen -victim-scale -writers 8 -ops 60000 -reps 3 \
		-readfrac 0.9 -zipf 1.5 -victim-segments 512 -json BENCH_shard.json

# Rerun the committed ladder and gate against it: fails when any rung's
# throughput regressed more than 10%. This is the tail of `make ci`;
# run it alone after perf-sensitive changes.
bench-gate:
	$(GO) run ./cmd/loadgen -shard-scale 1,4,16 -writers 32 -ops 24000 \
		-buffer 1024 -remote 32768 -evict-queue 1 -ppb 2 -blocks 65536 \
		-reps 3 -json /tmp/BENCH_shard.ci.json
	$(GO) run ./cmd/loadgen -victim-scale -writers 8 -ops 60000 -reps 3 \
		-readfrac 0.9 -zipf 1.5 -victim-segments 512 -json /tmp/BENCH_shard.ci.json
	$(GO) run ./cmd/benchgate -committed BENCH_shard.json -current /tmp/BENCH_shard.ci.json
	$(GO) run ./cmd/loadgen -ring-scale 2,3 -reps 3 -json /tmp/BENCH_cluster.ci.json
	$(GO) run ./cmd/benchgate -committed BENCH_cluster.json -current /tmp/BENCH_cluster.ci.json

# Just the grid-backed figures plus the per-cell perf record.
bench-grid:
	$(GO) run ./cmd/benchrunner -experiment fig6 -gridjson BENCH_grid.json

# Full run with CPU and heap profiles for pprof.
profile:
	$(GO) run ./cmd/benchrunner -cpuprofile cpu.pprof -memprofile mem.pprof
