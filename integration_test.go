package flashcoop_test

import (
	"testing"
	"time"

	"flashcoop"
)

// TestSimulationLifecycle drives a full cooperative-pair scenario through
// the public API: buffered traffic, a remote failure mid-stream, degraded
// operation, partner recovery, and resumed cooperation.
func TestSimulationLifecycle(t *testing.T) {
	cfgA := flashcoop.DefaultConfig("a", flashcoop.PolicyLAR)
	cfgB := flashcoop.DefaultConfig("b", flashcoop.PolicyLAR)
	a, b, err := flashcoop.NewPair(cfgA, cfgB)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: cooperative buffering.
	var at flashcoop.VTime
	for i := int64(0); i < 200; i++ {
		if _, err := a.Access(flashcoop.Request{
			Arrival: at, Op: flashcoop.OpWrite, LPN: i * 3, Pages: 1,
		}); err != nil {
			t.Fatal(err)
		}
		at += flashcoop.Millisecond
	}
	if a.Stats().BufferedWrites != 200 {
		t.Fatalf("buffered = %d", a.Stats().BufferedWrites)
	}
	if b.Remote().Len() == 0 {
		t.Fatal("no backups on b")
	}

	// Phase 2: b crashes; a's next write detects it, flushes, degrades.
	b.Fail()
	if _, err := a.Access(flashcoop.Request{
		Arrival: at, Op: flashcoop.OpWrite, LPN: 9999, Pages: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if a.PeerAlive() {
		t.Fatal("a did not detect b's failure")
	}
	if a.Buffer().DirtyLen() != 0 {
		t.Fatal("dirty data not flushed on failover")
	}

	// Phase 3: b recovers; a's heartbeat re-discovers it.
	at += flashcoop.Second
	if _, err := b.RecoverFromLocalFailure(at); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Heartbeat(at + flashcoop.Second); err != nil {
		t.Fatal(err)
	}
	if !a.PeerAlive() {
		t.Fatal("a did not rediscover b")
	}

	// Phase 4: cooperation resumed; writes buffer again.
	before := a.Stats().BufferedWrites
	if _, err := a.Access(flashcoop.Request{
		Arrival: at + 2*flashcoop.Second, Op: flashcoop.OpWrite, LPN: 1, Pages: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if a.Stats().BufferedWrites != before+1 {
		t.Fatal("buffering did not resume after recovery")
	}
	if err := a.Device().FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSimulationReplayAllPolicies replays the same trace through every
// policy (including the extension policies) and checks the paper's core
// ordering: every buffered system beats the baseline on erases.
func TestSimulationReplayAllPolicies(t *testing.T) {
	prof := flashcoop.Fin1(3000, 11)
	results := make(map[string]flashcoop.ReplayStats)
	for _, policy := range []string{"lar", "lru", "lfu", "bplru", "fab", "baseline"} {
		cfg := flashcoop.DefaultConfig("s1", policy)
		cfg.BufferPages = 512
		cfg.RemotePages = 512
		peer := cfg
		peer.Name = "s2"
		a, _, err := flashcoop.NewPair(cfg, peer)
		if err != nil {
			t.Fatal(err)
		}
		p := prof
		p.AddrPages = a.Device().UserPages() / 2
		reqs, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		rs, err := flashcoop.Replay(a, reqs, flashcoop.ReplayOptions{})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		results[policy] = rs
	}
	base := results["baseline"]
	for policy, rs := range results {
		if policy == "baseline" {
			continue
		}
		if rs.Erases >= base.Erases {
			t.Errorf("%s erases %d not below baseline %d", policy, rs.Erases, base.Erases)
		}
		if rs.Resp.Mean() >= base.Resp.Mean() {
			t.Errorf("%s resp %.3f not below baseline %.3f", policy, rs.Resp.Mean(), base.Resp.Mean())
		}
	}
}

// TestLiveLifecycle runs the cooperative protocol over real loopback TCP
// through the public API: write, verify backup, crash, recover, verify
// data integrity.
func TestLiveLifecycle(t *testing.T) {
	ssd := flashcoop.DefaultSSD("page", 256)
	a, err := flashcoop.NewLiveNode(flashcoop.LiveConfig{
		Name: "a", ListenAddr: "127.0.0.1:0",
		BufferPages: 64, RemotePages: 128, SSD: ssd,
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := flashcoop.NewLiveNode(flashcoop.LiveConfig{
		Name: "b", ListenAddr: "127.0.0.1:0", PeerAddr: a.Addr(),
		BufferPages: 64, RemotePages: 128, SSD: ssd,
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.ConnectPeer(); err != nil {
		t.Fatal(err)
	}

	ps := b.Device().PageSize()
	payload := make([]byte, ps)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := b.Write(7, payload); err != nil {
		t.Fatal(err)
	}
	if !a.Remote().Contains(7) {
		t.Fatal("backup missing")
	}

	// b crashes and is replaced; the replacement recovers page 7 from a.
	b.Crash()
	b2, err := flashcoop.NewLiveNode(flashcoop.LiveConfig{
		Name: "b2", ListenAddr: "127.0.0.1:0", PeerAddr: a.Addr(),
		BufferPages: 64, RemotePages: 128, SSD: ssd,
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	defer a.Close()
	if err := b2.ConnectPeer(); err != nil {
		t.Fatal(err)
	}
	if err := b2.RecoverFromPeer(); err != nil {
		t.Fatal(err)
	}
	got, err := b2.Read(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d corrupted: %x", i, got[i])
		}
	}
}
