package flashcoop_test

import (
	"testing"

	"flashcoop"
)

func TestDefaultConfigPair(t *testing.T) {
	a, b, err := flashcoop.NewPair(
		flashcoop.DefaultConfig("a", flashcoop.PolicyLAR),
		flashcoop.DefaultConfig("b", flashcoop.PolicyLAR),
	)
	if err != nil {
		t.Fatal(err)
	}
	done, err := a.Access(flashcoop.Request{Op: flashcoop.OpWrite, LPN: 0, Pages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("write consumed no time")
	}
	if !b.Remote().Contains(0) {
		t.Fatal("backup missing on partner")
	}
}

func TestDefaultSSDScaling(t *testing.T) {
	cfg := flashcoop.DefaultSSD("page", 2048)
	if got := cfg.FTL.Flash.TotalBlocks(); got != 2048 {
		t.Fatalf("TotalBlocks = %d, want 2048", got)
	}
	// Tiny block counts still produce a valid geometry.
	small := flashcoop.DefaultSSD("page", 4)
	if small.FTL.Flash.TotalBlocks() < 4 {
		t.Fatalf("small geometry: %d blocks", small.FTL.Flash.TotalBlocks())
	}
	if err := small.FTL.Flash.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadReplayThroughPublicAPI(t *testing.T) {
	a, _, err := flashcoop.NewPair(
		flashcoop.DefaultConfig("a", flashcoop.PolicyLAR),
		flashcoop.DefaultConfig("b", flashcoop.PolicyLAR),
	)
	if err != nil {
		t.Fatal(err)
	}
	prof := flashcoop.Fin1(500, 1)
	prof.AddrPages = a.Device().UserPages()
	reqs, err := prof.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := flashcoop.Replay(a, reqs, flashcoop.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Requests != 500 {
		t.Fatalf("replayed %d", rs.Requests)
	}
	st := flashcoop.ComputeTraceStats(reqs)
	if st.WriteFrac < 0.8 {
		t.Fatalf("Fin1 write fraction = %v", st.WriteFrac)
	}
}

func TestTableIIFlash(t *testing.T) {
	p := flashcoop.TableIIFlash()
	if p.PageSize != 4096 || p.PagesPerBlock != 64 {
		t.Fatalf("Table II geometry wrong: %+v", p)
	}
}
